// Package service implements the warm-model scheduling service: an
// HTTP/JSON layer that keeps persistent, warm-started solver sessions
// resident and answers allocation queries against them online.
//
// The paper's §1 adaptability loop re-solves the steady-state α/β
// program as platform capacities drift; PRs 1–4 made that re-solve
// cheap (one persistent core.Model per platform, every re-solve a
// revised-simplex warm restart from the carried basis, never a matrix
// rebuild). This package is the serving layer on top: a Pool of
// Sessions, each owning one warm model, answering
//
//   - query    — the current allocation and objective,
//   - what-if  — temporary speed/gateway/link-budget/β-bound
//     mutations, answered and rolled back exactly
//     (core.Model.CaptureState/RestoreState), with identical
//     concurrent what-ifs coalesced into one solve,
//   - epoch    — a committed adapt.Perturbation-style capacity
//     update, re-solved warm from the carried basis,
//
// all under a per-session mutex (the model is single-threaded;
// mutations serialize) with lp.Revised.Stats surfaced per session and
// pool-wide so the warm/cold split is observable in production.
package service

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/adapt"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/heuristics"
	"repro/internal/lp"
	"repro/internal/platform"
)

// sessionCacheCap bounds each session's answer cache. The hot set is
// the repeat queries against the current committed state; superseded
// epochs' entries are invalidated on commit, so a small cache holds
// everything that can still hit.
const sessionCacheCap = 256

// queryCacheKey is the answer-cache key of the committed-state query
// answer. Canonical what-if keys are JSON objects (they start with
// '{'), so a control byte prefix cannot collide with them.
const queryCacheKey = "\x01query"

// sessionConfig is the normalized solver configuration of a session.
type sessionConfig struct {
	obj      core.Objective
	objName  string
	heur     string
	payoffs  []float64 // nil = all 1
	seed     int64
	maxNodes int
}

// parseConfig normalizes and validates the solver configuration of a
// create request (the platform itself is handled separately).
func parseConfig(req *CreateSessionRequest) (sessionConfig, error) {
	cfg := sessionConfig{seed: req.Seed, maxNodes: req.MaxNodes, payoffs: req.Payoffs}
	switch req.Objective {
	case "", "maxmin":
		cfg.obj, cfg.objName = core.MAXMIN, "maxmin"
	case "sum":
		cfg.obj, cfg.objName = core.SUM, "sum"
	default:
		return cfg, fmt.Errorf("unknown objective %q (want sum or maxmin)", req.Objective)
	}
	switch req.Heuristic {
	case "", "lprg":
		cfg.heur = "lprg"
	case "lprr", "lprr-eq", "bnb":
		cfg.heur = req.Heuristic
	default:
		return cfg, fmt.Errorf("unknown heuristic %q (want lprg, lprr, lprr-eq or bnb)", req.Heuristic)
	}
	return cfg, nil
}

// sessionID digests the platform fingerprint and the solver
// configuration into the pool key: same platform + same configuration
// lands on the same warm session.
func sessionID(fp string, cfg sessionConfig) string {
	h := sha256.New()
	h.Write([]byte(fp))
	h.Write([]byte{0})
	h.Write([]byte(cfg.objName))
	h.Write([]byte{0})
	h.Write([]byte(cfg.heur))
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(cfg.seed))
	h.Write(buf[:])
	binary.LittleEndian.PutUint64(buf[:], uint64(int64(cfg.maxNodes)))
	h.Write(buf[:])
	for _, p := range cfg.payoffs {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(p))
		h.Write(buf[:])
	}
	return hex.EncodeToString(h.Sum(nil)[:12])
}

// commitDedupDepth bounds each session's record of recently applied
// tagged commits. A retry only needs its original to still be on
// record; the depth covers the plausible number of distinct clients
// interleaving commits on one session within a retry window.
const commitDedupDepth = 8

// commitRecord is one applied tagged commit: the idempotency ID and a
// private copy of the report it answered with.
type commitRecord struct {
	id  string
	rep *SolveReport
}

// flight is one in-progress what-if solve; concurrent identical
// requests wait on done and share the report.
type flight struct {
	done chan struct{}
	rep  *SolveReport
	err  error
}

// Session owns one warm solver model for one (platform,
// configuration) pair. All model access is serialized by mu; the
// committed state is the current platform pl/pr, the carried
// warm-start basis, and the epoch counter. What-ifs mutate the model
// under mu and roll back exactly before releasing it.
type Session struct {
	id          string
	fingerprint string
	cfg         sessionConfig

	mu    sync.Mutex
	pl    *platform.Platform // current (drifted) platform
	pr    *core.Problem
	model *core.Model
	basis *lp.Basis // committed root basis carried solve to solve
	epoch int

	queries   atomic.Uint64
	whatIfs   atomic.Uint64
	coalesced atomic.Uint64
	epochs    atomic.Uint64

	// lastCommitNs is the wall time (UnixNano) of the last committed
	// state change this process saw — session creation, restore, or an
	// applied epoch commit. The health evaluator's CommitStaleness
	// condition reads it lock-free.
	lastCommitNs atomic.Int64

	flightMu sync.Mutex
	flights  map[string]*flight

	// cache memoizes answers under (committed-state digest, canonical
	// query key). stateKey is the authoritative digest of the
	// committed state — the drifted platform's fingerprint plus the
	// epoch counter — maintained under mu on every commit; state
	// publishes it for lock-free cache lookups. Because the epoch
	// counter strictly increases, a commit always rotates the digest:
	// a stale hit after a commit is impossible even before the
	// commit's explicit invalidation sweep.
	cache    *cluster.AnswerCache
	stateKey string
	state    atomic.Value // string, mirrors stateKey

	// recentCommits records the most recently applied tagged epoch
	// commits, newest last (the cluster router tags every commit with
	// an idempotency ID). A retry carrying a recorded ID returns the
	// recorded report instead of applying the perturbation again — the
	// commit-retry safety net for responses lost mid-flight. The record
	// travels in snapshots, so it survives failover to a promoted
	// replica. It is commitDedupDepth deep, not one-deep, because
	// distinct clients' commits to one session are not serialized: if
	// client A's applied commit loses its response and client B's
	// commit lands before A retries, A's ID must still be on record or
	// the retry would re-apply it.
	recentCommits []commitRecord

	// onCommit, when set (by the pool's session hook), runs after
	// every committed state change — creation and epoch commits —
	// outside the session mutex. The cluster layer uses it to persist
	// a fresh snapshot.
	onCommit func(*Session)
}

// buildSession assembles a session's model and bookkeeping without
// solving anything — the shared half of newSession (which follows
// with the initial cold solve) and RestoreSession (which installs a
// snapshot's basis and solves warm instead).
func buildSession(pl *platform.Platform, cfg sessionConfig) (*Session, error) {
	pr := core.NewProblem(pl)
	if cfg.payoffs != nil {
		if len(cfg.payoffs) != pr.K() {
			return nil, fmt.Errorf("%d payoffs for %d clusters", len(cfg.payoffs), pr.K())
		}
		pr.Payoffs = append([]float64(nil), cfg.payoffs...)
	}
	model, err := pr.NewModel(cfg.obj)
	if err != nil {
		return nil, err
	}
	s := &Session{
		fingerprint: pl.Fingerprint(),
		cfg:         cfg,
		pl:          pl,
		pr:          pr,
		model:       model,
		flights:     make(map[string]*flight),
		cache:       cluster.NewAnswerCache(sessionCacheCap),
	}
	s.id = sessionID(s.fingerprint, cfg)
	s.refreshStateLocked() // unshared yet, so "locked" trivially holds
	s.lastCommitNs.Store(time.Now().UnixNano())
	return s, nil
}

// newSession validates the platform, builds the warm model and runs
// the initial (cold) solve to establish the carried basis, returning
// its report alongside the session so creation does not pay a second
// solve. Every later solve on the session is a warm restart.
func newSession(pl *platform.Platform, cfg sessionConfig) (*Session, *SolveReport, error) {
	s, err := buildSession(pl, cfg)
	if err != nil {
		return nil, nil, err
	}
	rep, err := s.Query()
	if err != nil {
		return nil, nil, fmt.Errorf("initial solve: %w", err)
	}
	return s, rep, nil
}

// refreshStateLocked recomputes the committed-state digest from the
// current (drifted) platform and epoch counter and publishes it for
// lock-free cache lookups. Called under mu at every commit.
func (s *Session) refreshStateLocked() {
	s.stateKey = s.pl.Fingerprint() + "@" + fmt.Sprint(s.epoch)
	s.state.Store(s.stateKey)
}

// cacheLookup serves query from the answer cache against the
// currently published committed state, copying the stored report with
// Cached set. Lock-free: a hit is an answer that was valid at lookup
// time, exactly as a solve that finished just before a concurrent
// commit would be.
func (s *Session) cacheLookup(query string) (*SolveReport, bool) {
	state, _ := s.state.Load().(string)
	if state == "" {
		return nil, false
	}
	v, ok := s.cache.Get(state, query)
	if !ok {
		return nil, false
	}
	rep := *(v.(*SolveReport))
	rep.Cached = true
	return &rep, true
}

// cachePutLocked stores rep under the authoritative committed-state
// digest. Must run under mu so the answer can never be filed under a
// state it was not computed against (the digest only moves inside
// epoch commits, which also hold mu). The stored copy is private:
// later hits return copies of it, and the caller's report stays
// mutable without aliasing the cache.
func (s *Session) cachePutLocked(query string, rep *SolveReport) {
	cp := *rep
	s.cache.Put(s.stateKey, query, &cp)
}

// CacheStats returns the session's answer-cache hit/miss counters.
func (s *Session) CacheStats() (hits, misses uint64) {
	return s.cache.Hits(), s.cache.Misses()
}

// FlushAnswerCache drops every cached answer; the hit/miss counters
// survive (they feed monotone /stats aggregates) and subsequent
// requests re-solve warm and re-populate. For measurements that need
// the uncached solve path, and for reclaiming memory.
func (s *Session) FlushAnswerCache() { s.cache.Flush() }

// Info snapshots the session's description.
func (s *Session) Info() SessionInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.infoLocked()
}

func (s *Session) infoLocked() SessionInfo {
	return SessionInfo{
		ID:          s.id,
		Fingerprint: s.fingerprint,
		K:           s.pl.K(),
		Routers:     s.pl.Routers,
		Links:       len(s.pl.Links),
		Rows:        s.model.Rows(),
		Objective:   s.cfg.objName,
		Heuristic:   s.cfg.heur,
		Epoch:       s.epoch,
	}
}

// PlatformJSON returns the session's current (drifted) platform
// description.
func (s *Session) PlatformJSON() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pl.Encode()
}

// Stats snapshots the session's activity and solver counters.
func (s *Session) Stats() SessionStats {
	s.mu.Lock()
	info := s.infoLocked()
	solver := s.model.SolverStats()
	s.mu.Unlock()
	return SessionStats{
		SessionInfo:      info,
		Queries:          s.queries.Load(),
		WhatIfs:          s.whatIfs.Load(),
		CoalescedWhatIfs: s.coalesced.Load(),
		Epochs:           s.epochs.Load(),
		CacheHits:        s.cache.Hits(),
		CacheMisses:      s.cache.Misses(),
		Solver:           solver,
	}
}

// SolverStats returns the session's cumulative lp counters (taking
// the session lock, so it is safe against in-flight solves).
func (s *Session) SolverStats() lp.Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.model.SolverStats()
}

// WarmPivotBudget returns the solver's pivot budget for warm
// restarts — the denominator of the health evaluator's warm-headroom
// condition.
func (s *Session) WarmPivotBudget() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.model.WarmPivotBudget()
}

// LastCommit returns the wall time of the last committed state change
// this process saw for the session.
func (s *Session) LastCommit() time.Time {
	return time.Unix(0, s.lastCommitNs.Load())
}

// BetaRoutes lists the remote routes (k,l) carrying a β variable —
// the routes a what-if may legally bound.
func (s *Session) BetaRoutes() []core.Pair {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.model.BetaVars()
}

// Query answers the committed state: the heuristic allocation and
// objective on the session's current platform. A repeat query against
// an unchanged committed state is an answer-cache hit (the solve it
// skips would have been a warm restart at ~zero pivots — the cache
// turns it into a map lookup); otherwise it solves warm from the
// carried basis and caches the answer. Cached answers carry the
// solver-stats snapshot of the solve that produced them, so repeat
// hits are byte-identical.
func (s *Session) Query() (*SolveReport, error) {
	s.queries.Add(1)
	if rep, ok := s.cacheLookup(queryCacheKey); ok {
		return rep, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	rep, err := s.solveLocked(s.pr)
	if err == nil {
		s.cachePutLocked(queryCacheKey, rep)
	}
	return rep, err
}

// heuristicSolve runs the configured heuristic over the session model
// against epr's capacities, warm from the carried basis, returning
// the allocation and the new root basis. The randomized heuristics
// reseed from the session seed on every call, so answers are
// deterministic and equal to a batch run with the same seed.
func (s *Session) heuristicSolve(epr *core.Problem) (*core.Allocation, *lp.Basis, error) {
	switch s.cfg.heur {
	case "lprg":
		return heuristics.LPRGOnModel(s.model, epr, s.cfg.obj, s.basis)
	case "lprr":
		rng := rand.New(rand.NewSource(s.cfg.seed))
		return heuristics.LPRROnModel(s.model, epr, s.cfg.obj, heuristics.ProportionalRounding, rng, s.basis)
	case "lprr-eq":
		rng := rand.New(rand.NewSource(s.cfg.seed))
		return heuristics.LPRROnModel(s.model, epr, s.cfg.obj, heuristics.EqualRounding, rng, s.basis)
	case "bnb":
		alloc, _, basis, err := heuristics.BranchAndBoundOnModel(s.model, epr, s.cfg.obj, s.cfg.maxNodes, s.basis, nil)
		return alloc, basis, err
	}
	return nil, nil, fmt.Errorf("unknown heuristic %q", s.cfg.heur)
}

// solveLocked computes a committed answer against epr (the session's
// current problem, or the epoch-updated one): heuristic solve, then
// the relaxation bound via an ephemeral warm re-solve from the root
// basis just produced (typically zero pivots — the basis is already
// optimal for the unpinned relaxation). The carried basis advances.
func (s *Session) solveLocked(epr *core.Problem) (*SolveReport, error) {
	// Committed answers must be replica-independent: a session promoted
	// from a snapshot on a successor holds the same matrix, capacities
	// and basis as the dead owner's live session did, but not its
	// accumulated solver internals (sign normalization, Forrest–Tomlin
	// factors, pricing weights), and on degenerate platforms those pick
	// the optimal vertex — so the heuristic's tie-breaks, and therefore
	// the committed Value, would drift across a failover. Rebase drops
	// the history so this solve is a pure function of the committed
	// discrete state on every replica. What-if solves skip this: they
	// are read-only hypotheticals where continuation speed wins.
	s.model.Rebase()
	alloc, basis, err := s.heuristicSolve(epr)
	if err != nil {
		return nil, err
	}
	if err := epr.CheckAllocation(alloc, core.DefaultTol); err != nil {
		return nil, fmt.Errorf("internal error: heuristic produced an invalid allocation: %w", err)
	}
	if basis != nil {
		s.basis = basis
	}
	s.model.ResetBounds()
	bound, ok, err := s.model.SolveEphemeral(s.basis)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("relaxation infeasible on an unconstrained platform (model bug)")
	}
	rep := s.reportFor(epr, alloc)
	rep.LPBound = bound.Objective
	return rep, nil
}

// reportFor assembles the heuristic-answer SolveReport.
func (s *Session) reportFor(epr *core.Problem, alloc *core.Allocation) *SolveReport {
	K := epr.K()
	rep := &SolveReport{
		Heuristic:   s.cfg.heur,
		Objective:   s.cfg.objName,
		Feasible:    true,
		Value:       epr.Objective(s.cfg.obj, alloc),
		Alpha:       alloc.Alpha,
		Beta:        alloc.Beta,
		Throughputs: make([]float64, K),
		Epoch:       s.epoch,
	}
	for k := 0; k < K; k++ {
		rep.Throughputs[k] = alloc.AppThroughput(k)
	}
	stats := s.model.SolverStats().Deterministic()
	rep.Stats = &stats
	return rep
}

// relaxReportLocked assembles a relaxation-answer SolveReport from a
// MixedSolution (β̃ fractional).
func (s *Session) relaxReportLocked(sol *core.MixedSolution) *SolveReport {
	K := s.pr.K()
	rep := &SolveReport{
		Heuristic:   s.cfg.heur,
		Objective:   s.cfg.objName,
		Feasible:    true,
		Relaxed:     true,
		Value:       sol.Objective,
		LPBound:     sol.Objective,
		Alpha:       sol.Alpha,
		Throughputs: make([]float64, K),
		BetaFrac:    make([][]float64, K),
		Epoch:       s.epoch,
	}
	for k := 0; k < K; k++ {
		rep.BetaFrac[k] = make([]float64, K)
		for l := 0; l < K; l++ {
			rep.Throughputs[k] += sol.Alpha[k][l]
		}
	}
	for p, v := range sol.Beta {
		rep.BetaFrac[p.K][p.L] = v
	}
	stats := s.model.SolverStats().Deterministic()
	rep.Stats = &stats
	return rep
}

// WhatIf answers a hypothetical without committing it. A repeat of an
// identical what-if against an unchanged committed state is an
// answer-cache hit (Cached=true, no solve at all — what-ifs roll back
// exactly, so the same request against the same committed state is
// the same answer). Identical *concurrent* requests (same canonical
// JSON) coalesce onto one solve; every caller gets the shared report
// (waiters see Coalesced=true).
func (s *Session) WhatIf(req *WhatIfRequest) (*SolveReport, error) {
	key, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	if rep, ok := s.cacheLookup(string(key)); ok {
		s.whatIfs.Add(1)
		return rep, nil
	}
	s.flightMu.Lock()
	if f, ok := s.flights[string(key)]; ok {
		s.flightMu.Unlock()
		<-f.done
		s.coalesced.Add(1)
		if f.err != nil {
			return nil, f.err
		}
		shared := *f.rep
		shared.Coalesced = true
		return &shared, nil
	}
	f := &flight{done: make(chan struct{})}
	s.flights[string(key)] = f
	s.flightMu.Unlock()

	f.rep, f.err = s.whatIfSolve(req, string(key))

	s.flightMu.Lock()
	delete(s.flights, string(key))
	s.flightMu.Unlock()
	close(f.done)
	return f.rep, f.err
}

// whatIfSolve performs the actual what-if: snapshot the model's
// capacity/bound state, apply the hypothetical, solve warm from the
// committed basis (ephemerally — the resulting basis is discarded,
// the committed basis is never mutated), and restore the snapshot
// exactly before releasing the session. The answer is cached under
// the committed-state digest while mu is still held, so it can never
// be filed against a state other than the one it was computed on.
func (s *Session) whatIfSolve(req *WhatIfRequest, key string) (*SolveReport, error) {
	s.whatIfs.Add(1)
	s.mu.Lock()
	defer s.mu.Unlock()
	rep, err := s.whatIfSolveLocked(req)
	if err == nil && rep != nil {
		s.cachePutLocked(key, rep)
	}
	return rep, err
}

func (s *Session) whatIfSolveLocked(req *WhatIfRequest) (*SolveReport, error) {
	epl, err := s.hypotheticalPlatform(req)
	if err != nil {
		return nil, err
	}
	snap := s.model.CaptureState()
	defer s.model.RestoreState(snap)
	if err := adapt.InjectCapacities(s.model, epl); err != nil {
		return nil, err
	}

	if req.Relax || len(req.Bounds) > 0 {
		s.model.ResetBounds()
		for _, b := range req.Bounds {
			if err := applyBound(s.model, b); err != nil {
				return nil, err
			}
		}
		sol, ok, err := s.model.SolveEphemeral(s.basis)
		if err != nil {
			return nil, err
		}
		if !ok {
			stats := s.model.SolverStats().Deterministic()
			return &SolveReport{
				Heuristic: s.cfg.heur,
				Objective: s.cfg.objName,
				Feasible:  false,
				Relaxed:   true,
				Epoch:     s.epoch,
				Stats:     &stats,
			}, nil
		}
		return s.relaxReportLocked(sol), nil
	}

	epr := &core.Problem{Platform: epl, Payoffs: s.pr.Payoffs}
	alloc, _, err := s.heuristicSolve(epr) // basis discarded: nothing commits
	if err != nil {
		return nil, err
	}
	if err := epr.CheckAllocation(alloc, core.DefaultTol); err != nil {
		return nil, fmt.Errorf("internal error: heuristic produced an invalid allocation: %w", err)
	}
	s.model.ResetBounds()
	bound, ok, err := s.model.SolveEphemeral(s.basis)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("what-if relaxation infeasible (model bug)")
	}
	rep := s.reportFor(epr, alloc)
	rep.LPBound = bound.Objective
	return rep, nil
}

// hypotheticalPlatform clones the session platform with the what-if's
// capacity mutations applied (validating indices and values), so the
// heuristic evaluates residual capacities against the hypothetical.
func (s *Session) hypotheticalPlatform(req *WhatIfRequest) (*platform.Platform, error) {
	epl := s.pl.Clone()
	K := epl.K()
	for _, m := range req.Speeds {
		if m.Cluster < 0 || m.Cluster >= K {
			return nil, fmt.Errorf("speed mutation: cluster %d out of range [0,%d)", m.Cluster, K)
		}
		epl.Clusters[m.Cluster].Speed = m.Value
	}
	for _, m := range req.Gateways {
		if m.Cluster < 0 || m.Cluster >= K {
			return nil, fmt.Errorf("gateway mutation: cluster %d out of range [0,%d)", m.Cluster, K)
		}
		epl.Clusters[m.Cluster].Gateway = m.Value
	}
	for _, m := range req.Links {
		if m.Link < 0 || m.Link >= len(epl.Links) {
			return nil, fmt.Errorf("link mutation: link %d out of range [0,%d)", m.Link, len(epl.Links))
		}
		if m.MaxConnect < 0 || math.IsNaN(m.MaxConnect) || math.IsInf(m.MaxConnect, 0) {
			return nil, fmt.Errorf("link mutation: max-connect %g invalid", m.MaxConnect)
		}
		if m.MaxConnect != math.Trunc(m.MaxConnect) {
			return nil, fmt.Errorf("link mutation: max-connect %g invalid (budgets are whole connection counts)", m.MaxConnect)
		}
		epl.Links[m.Link].MaxConnect = int(m.MaxConnect)
	}
	if err := epl.Validate(); err != nil {
		return nil, err
	}
	return epl, nil
}

// betaBounder is the slice of the model API a what-if β box needs;
// *core.Model and the forked *core.ModelView both implement it.
type betaBounder interface {
	SetBounds(core.Pair, core.BetaBounds) error
}

// applyBound installs one what-if β box on m (the session model, or a
// forked view on the batched path).
func applyBound(m betaBounder, b RouteBounds) error {
	if b.Lb < 0 || math.IsNaN(b.Lb) || math.IsInf(b.Lb, 0) {
		return fmt.Errorf("bound mutation (%d,%d): lb %g invalid", b.From, b.To, b.Lb)
	}
	if math.IsNaN(b.Ub) || math.IsInf(b.Ub, 0) {
		return fmt.Errorf("bound mutation (%d,%d): ub %g invalid", b.From, b.To, b.Ub)
	}
	return m.SetBounds(core.Pair{K: b.From, L: b.To}, core.BetaBounds{Lb: b.Lb, Ub: b.Ub})
}

// Epoch commits a capacity update: the perturbation factors apply to
// the session's current platform (drift accumulates), the new
// capacities are injected into the model as RHS/bound mutations, and
// the answer re-solves warm from the carried basis. The commit
// rotates the committed-state digest and invalidates the previous
// state's cached answers — a post-commit query can only ever see a
// post-commit answer — and runs the commit hook (snapshot
// persistence) outside the session mutex.
func (s *Session) Epoch(req *EpochRequest) (*SolveReport, error) {
	return s.EpochIdempotent(req, "")
}

// EpochIdempotent is Epoch with an idempotency tag: a non-empty
// commitID matching a recently applied one returns the recorded
// report without touching the model, so the cluster router can retry
// a commit whose response was lost without ever double-applying its
// perturbation — even when other clients' commits landed in between.
// An empty commitID is a plain (untagged) commit.
func (s *Session) EpochIdempotent(req *EpochRequest, commitID string) (*SolveReport, error) {
	s.mu.Lock()
	if commitID != "" {
		if rec, ok := s.commitLookupLocked(commitID); ok {
			rep := *rec
			s.mu.Unlock()
			return &rep, nil
		}
	}
	s.epochs.Add(1)
	rep, err := s.epochLocked(req)
	if err == nil {
		s.lastCommitNs.Store(time.Now().UnixNano())
		if commitID != "" {
			s.recordCommitLocked(commitID, rep)
		}
	}
	hook := s.onCommit
	s.mu.Unlock()
	if err == nil && hook != nil {
		hook(s)
	}
	return rep, err
}

// commitLookupLocked finds the recorded report of an applied tagged
// commit; newest-first, since a retry is almost always of the latest.
func (s *Session) commitLookupLocked(commitID string) (*SolveReport, bool) {
	for i := len(s.recentCommits) - 1; i >= 0; i-- {
		if s.recentCommits[i].id == commitID {
			return s.recentCommits[i].rep, true
		}
	}
	return nil, false
}

// recordCommitLocked appends an applied tagged commit to the dedup
// record (a private copy of the report), evicting the oldest entries
// past commitDedupDepth.
func (s *Session) recordCommitLocked(commitID string, rep *SolveReport) {
	cp := *rep
	s.recentCommits = append(s.recentCommits, commitRecord{id: commitID, rep: &cp})
	if over := len(s.recentCommits) - commitDedupDepth; over > 0 {
		s.recentCommits = append(s.recentCommits[:0:0], s.recentCommits[over:]...)
	}
}

func (s *Session) epochLocked(req *EpochRequest) (*SolveReport, error) {
	pert := adapt.Perturbation{
		GatewayFactor: req.GatewayFactor,
		SpeedFactor:   req.SpeedFactor,
		LinkFactor:    req.LinkFactor,
	}
	epl, err := pert.Apply(s.pl)
	if err != nil {
		return nil, err
	}
	if err := epl.Validate(); err != nil {
		return nil, fmt.Errorf("perturbed platform invalid: %w", err)
	}
	// A failed injection (e.g. a factor driving a capacity out of
	// range) must not leave the model half-updated: roll back to the
	// committed state and report.
	snap := s.model.CaptureState()
	if err := adapt.InjectCapacities(s.model, epl); err != nil {
		s.model.RestoreState(snap)
		return nil, err
	}
	s.pl = epl
	s.pr = &core.Problem{Platform: epl, Payoffs: s.pr.Payoffs}
	s.epoch++
	prevState := s.stateKey
	s.refreshStateLocked()
	s.cache.InvalidateState(prevState)
	rep, err := s.solveLocked(s.pr)
	if err == nil {
		s.cachePutLocked(queryCacheKey, rep)
	}
	return rep, err
}
