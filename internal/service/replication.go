package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"repro/internal/cluster"
)

// A replica is a passive copy of another member's session: the sealed
// snapshot bytes plus their decoded form. It costs no solver state —
// promotion to a live warm session happens only when this node
// becomes (or is asked to act as) the session's holder.
type replica struct {
	data []byte
	snap *cluster.SessionSnapshot
}

// replicateAck answers POST /cluster/replicate; the sender verifies
// Checksum against the snapshot it shipped, so a torn or reordered
// transfer can't be mistaken for a durable replica.
type replicateAck struct {
	ID       string `json:"id"`
	Epoch    int    `json:"epoch"`
	Checksum string `json:"checksum"`
}

// forgetMessage asks successors to drop every trace of a deleted
// session (passive replica, live promoted copy, snapshot file) so a
// later promotion can't resurrect it.
type forgetMessage struct {
	ID string `json:"id"`
}

func (n *Node) replicaCount() int {
	n.repMu.Lock()
	defer n.repMu.Unlock()
	return len(n.replicas)
}

func (n *Node) getReplica(id string) *replica {
	n.repMu.Lock()
	defer n.repMu.Unlock()
	return n.replicas[id]
}

func (n *Node) dropReplica(id string) {
	n.repMu.Lock()
	delete(n.replicas, id)
	n.repMu.Unlock()
}

// dropReplicaThrough drops the replica for id only if it is no newer
// than epoch — the post-promotion cleanup, which must not discard a
// fresher replica a concurrent fan-out delivered while the promotion
// was rebuilding.
func (n *Node) dropReplicaThrough(id string, epoch int) {
	n.repMu.Lock()
	if r, ok := n.replicas[id]; ok && r.snap.Epoch <= epoch {
		delete(n.replicas, id)
	}
	n.repMu.Unlock()
}

// replicationTargets lists the members that should hold passive
// replicas of id: the first Replication distinct members clockwise
// from the key, minus self. For the owner that is its R−1 successors;
// for a non-owner stuck holding a session after a failed migration it
// includes the true owner — which repairs the PR 8 hole where such a
// session was reachable only through forwarding and died with its
// holder.
func (n *Node) replicationTargets(id string) []string {
	if n.cfg.Replication <= 1 {
		return nil
	}
	succ := n.currentRing().Successors(id, n.cfg.Replication)
	out := make([]string, 0, len(succ))
	for _, m := range succ {
		if m != n.self {
			out = append(out, m)
		}
	}
	if len(out) > n.cfg.Replication-1 {
		out = out[:n.cfg.Replication-1]
	}
	return out
}

// replicateOut fans the sealed snapshot to the ring successors and
// verifies each ack's checksum. It runs synchronously inside the
// session-commit hook — before the client's HTTP response is written
// — so an acked commit is always either replicated or counted in
// ReplicaErrors; there is no window where an ack implies durability
// the cluster doesn't have.
func (n *Node) replicateOut(snap *cluster.SessionSnapshot) {
	targets := n.replicationTargets(snap.ID)
	if len(targets) == 0 {
		return
	}
	data, err := snap.Encode()
	if err != nil {
		n.replicaErrors.Add(1)
		n.lastFanout.Store(snap.ID, fanoutRecord{targets: len(targets), failed: len(targets), at: time.Now()})
		return
	}
	failed := 0
	for _, target := range targets {
		start := time.Now()
		err := n.sendReplica(target, snap, data)
		n.metrics.fanout.Observe(time.Since(start))
		if err != nil {
			n.replicaErrors.Add(1)
			failed++
			continue
		}
		n.replicasSent.Add(1)
	}
	n.lastFanout.Store(snap.ID, fanoutRecord{targets: len(targets), failed: failed, at: time.Now()})
}

func (n *Node) sendReplica(target string, snap *cluster.SessionSnapshot, data []byte) error {
	ctx, cancel := context.WithTimeout(context.Background(), n.cfg.TransferTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, target+"/cluster/replicate", bytes.NewReader(data))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(fromHeader, n.self)
	req.Header.Set(incarnationHeader, strconv.FormatUint(n.membership.Incarnation(), 10))
	resp, err := n.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxBodyBytes))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("replicate %s to %s: status %d: %s", snap.ID, target, resp.StatusCode, body)
	}
	var ack replicateAck
	if err := json.Unmarshal(body, &ack); err != nil {
		return fmt.Errorf("replicate %s to %s: decoding ack: %w", snap.ID, target, err)
	}
	if ack.Checksum != snap.Checksum {
		return fmt.Errorf("replicate %s to %s: ack checksum %q != sent %q", snap.ID, target, ack.Checksum, snap.Checksum)
	}
	return nil
}

// handleReplicate receives a passive replica. The snapshot is decoded
// strictly (version, checksum, completeness — fail closed), then
// fenced two ways before it can displace anything: a sender
// incarnation below the freshest one known for that peer marks a
// message from a previous life, and a snapshot epoch below what this
// node already holds (replica or live) marks state the cluster has
// moved past — a partitioned old owner's late fan-out hits both.
func (n *Node) handleReplicate(w http.ResponseWriter, r *http.Request) {
	data, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes+1))
	if err != nil || len(data) > maxBodyBytes {
		writeError(w, http.StatusBadRequest, fmt.Errorf("reading replica"))
		return
	}
	snap, err := cluster.DecodeSnapshot(data)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if from := r.Header.Get(fromHeader); from != "" {
		inc, _ := strconv.ParseUint(r.Header.Get(incarnationHeader), 10, 64)
		if known := n.membership.KnownIncarnation(from); inc < known {
			writeError(w, http.StatusConflict,
				fmt.Errorf("replica of %s from %s: stale incarnation %d < %d", snap.ID, from, inc, known))
			return
		}
		// A replica push is direct evidence the sender is alive.
		n.membership.ObserveAck(from, inc, time.Now())
	}
	if held := n.getReplica(snap.ID); held != nil && snap.Epoch < held.snap.Epoch {
		writeError(w, http.StatusConflict,
			fmt.Errorf("replica of %s: epoch %d below held %d", snap.ID, snap.Epoch, held.snap.Epoch))
		return
	}
	if live := n.srv.Pool().Get(snap.ID); live != nil {
		liveEpoch := live.Info().Epoch
		switch {
		case snap.Epoch < liveEpoch:
			writeError(w, http.StatusConflict,
				fmt.Errorf("replica of %s: epoch %d below live %d", snap.ID, snap.Epoch, liveEpoch))
			return
		case snap.Epoch > liveEpoch:
			// The cluster committed past our live copy. Epochs only
			// advance through commits, so a higher snapshot epoch is
			// proof our session missed some — whether we promoted
			// during a suspicion that turned out false, or we are a
			// resurrected owner whose sessions moved on while peers
			// had us confirmed dead. Either way the snapshot is
			// authoritative even if the ring says the session is ours:
			// drop the stale live session, keep the fresh replica (the
			// next touch promotes it warm).
			n.srv.Pool().Evict(snap.ID)
		}
	}
	n.repMu.Lock()
	n.replicas[snap.ID] = &replica{data: data, snap: snap}
	n.repMu.Unlock()
	writeJSON(w, http.StatusOK, replicateAck{ID: snap.ID, Epoch: snap.Epoch, Checksum: snap.Checksum})
}

// handleForget drops every trace of a deleted session.
func (n *Node) handleForget(w http.ResponseWriter, r *http.Request) {
	var msg forgetMessage
	if !decodeBody(w, r, &msg) {
		return
	}
	if msg.ID == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("forget: empty id"))
		return
	}
	n.dropReplica(msg.ID)
	n.srv.Pool().Evict(msg.ID)
	if n.store != nil {
		n.store.Delete(msg.ID) //nolint:errcheck
	}
	writeJSON(w, http.StatusOK, forgetMessage{ID: msg.ID})
}

// forgetSession cleans up after a local DELETE: drop the snapshot
// file and replica here, and tombstone the session at every member
// that might hold a copy. The fan-out goes to every known member —
// not just the current replication targets — because membership
// changes strand replicas on former successors, and a later ring
// change could otherwise resurrect the deleted session from one of
// them via promoteOwned. Deletes are rare; the extra sends are cheap.
func (n *Node) forgetSession(id string) {
	n.dropReplica(id)
	if n.store != nil {
		n.store.Delete(id) //nolint:errcheck
	}
	data, err := json.Marshal(forgetMessage{ID: id})
	if err != nil {
		return
	}
	for _, target := range n.membership.Known() {
		if target == n.self {
			continue
		}
		ctx, cancel := context.WithTimeout(context.Background(), n.cfg.WriteTimeout)
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, target+"/cluster/forget", bytes.NewReader(data))
		if err != nil {
			cancel()
			continue
		}
		req.Header.Set("Content-Type", "application/json")
		if resp, err := n.client.Do(req); err == nil {
			io.Copy(io.Discard, resp.Body) //nolint:errcheck
			resp.Body.Close()
		}
		cancel()
	}
}

// promoteIfReplica turns a passive replica into a live warm session
// when this node is asked to serve it (ownership moved here, a read
// failed over here, or a forwarded request landed here). Promotion is
// serialized: concurrent requests for the same session promote once.
// The passive copy is consumed by a successful promotion: once the
// session is live here, replication fan-out excludes self, so a kept
// replica would freeze at the promotion-time epoch and — were the pool
// ever to evict the live session — reinstall that stale state over
// committed epochs. The store snapshot (refreshed by the commit hook)
// is also consulted, preferring whichever source is at the higher
// epoch, so a replica parked before this node last owned the session
// can never roll back the store's fresher history.
func (n *Node) promoteIfReplica(id string) {
	rep := n.getReplica(id)
	if rep == nil {
		return
	}
	n.promoteMu.Lock()
	defer n.promoteMu.Unlock()
	if n.srv.Pool().Get(id) != nil {
		return // lost the race: someone else promoted (or it was live all along)
	}
	snap := rep.snap
	if n.store != nil {
		if stored, err := n.store.Load(id); err == nil && stored.Epoch > snap.Epoch {
			snap = stored
		}
	}
	sess, _, warm, err := RestoreSession(snap)
	if err != nil {
		n.replicaErrors.Add(1)
		n.dropReplica(id) // fail closed: never install from damaged state
		return
	}
	n.srv.Pool().Install(sess)
	n.dropReplicaThrough(id, snap.Epoch) // the live session supersedes the passive copy
	n.promotions.Add(1)
	if warm {
		n.warmRebuilds.Add(1)
	} else {
		n.coldRebuilds.Add(1)
	}
}

// promoteOwned promotes every replica the ring (after a membership
// change) assigns to this node — the moment a death is confirmed, the
// dead member's sessions come warm out of their successors' replicas
// with zero cold solves.
func (n *Node) promoteOwned(ring *cluster.Ring) {
	n.repMu.Lock()
	var ids []string
	for id := range n.replicas {
		if ring.Owner(id) == n.self {
			ids = append(ids, id)
		}
	}
	n.repMu.Unlock()
	for _, id := range ids {
		n.promoteIfReplica(id)
	}
}
