package service

import (
	"encoding/json"

	"repro/internal/lp"
)

// This file defines the service's JSON wire types. cmd/dlsched -json
// emits the same SolveReport, so a batch CLI answer and a service
// answer for the same platform and heuristic are directly diffable.

// CreateSessionRequest opens (or re-attaches to) a warm solver
// session. Platform is the standard platform JSON, exactly as emitted
// by cmd/platgen; it is validated before a model is built.
type CreateSessionRequest struct {
	Platform json.RawMessage `json:"platform"`
	// Objective is "maxmin" (default) or "sum".
	Objective string `json:"objective,omitempty"`
	// Heuristic is "lprg" (default), "lprr", "lprr-eq" or "bnb" —
	// the solution methods with warm persistent-model entry points.
	Heuristic string `json:"heuristic,omitempty"`
	// Payoffs are the per-application payoff factors π_k; defaults to
	// all 1. Length must equal the platform's cluster count.
	Payoffs []float64 `json:"payoffs,omitempty"`
	// Seed drives the randomized heuristics (lprr, lprr-eq). Every
	// solve reseeds from it, so a session's answers are deterministic
	// and equal to a batch run with the same seed.
	Seed int64 `json:"seed,omitempty"`
	// MaxNodes bounds the bnb search per solve; <= 0 uses the solver
	// default.
	MaxNodes int `json:"maxNodes,omitempty"`
}

// SessionInfo describes one pooled session.
type SessionInfo struct {
	// ID keys the session in the pool: a digest of the platform
	// fingerprint and the solver configuration.
	ID string `json:"id"`
	// Fingerprint is the platform description's content hash
	// (platform.Fingerprint) at session creation.
	Fingerprint string `json:"fingerprint"`
	K           int    `json:"k"`
	Routers     int    `json:"routers"`
	Links       int    `json:"links"`
	// Rows is the warm model's constraint row count (the basis
	// dimension every simplex iteration pays for).
	Rows      int    `json:"rows"`
	Objective string `json:"objective"`
	Heuristic string `json:"heuristic"`
	// Epoch counts committed capacity updates since creation.
	Epoch int `json:"epoch"`
}

// CreateSessionResponse is the answer to POST /sessions.
type CreateSessionResponse struct {
	SessionInfo
	// Created is false when an existing warm session was re-attached
	// (pool hit) instead of built.
	Created bool `json:"created"`
	// Report is the solve on the (current) platform: the initial cold
	// solve for a fresh session, a warm re-solve on a pool hit.
	Report *SolveReport `json:"report"`
}

// ClusterValue addresses one cluster's capacity in a what-if.
type ClusterValue struct {
	Cluster int     `json:"cluster"`
	Value   float64 `json:"value"`
}

// LinkValue addresses one backbone link's connection budget in a
// what-if. MaxConnect must be a whole number of connections (the
// paper's budgets are integral); fractional values are rejected.
type LinkValue struct {
	Link       int     `json:"link"`
	MaxConnect float64 `json:"maxConnect"`
}

// RouteBounds pins or boxes one remote route's connection count β in
// a what-if: lb <= β_{from,to} <= ub. Ub < 0 means unbounded above
// (the route's natural link-budget cap applies). Bound what-ifs are
// answered with the rational relaxation (Relax is implied): the
// integer heuristics re-derive β themselves and would discard the
// pin.
type RouteBounds struct {
	From int     `json:"from"`
	To   int     `json:"to"`
	Lb   float64 `json:"lb"`
	Ub   float64 `json:"ub"`
}

// WhatIfRequest asks "what would the allocation be if these
// capacities (and β bounds) held" without committing anything: the
// session's model is mutated, solved warm from the committed basis,
// and rolled back exactly. Identical concurrent what-ifs on a session
// are coalesced into one solve.
type WhatIfRequest struct {
	Speeds   []ClusterValue `json:"speeds,omitempty"`
	Gateways []ClusterValue `json:"gateways,omitempty"`
	Links    []LinkValue    `json:"links,omitempty"`
	Bounds   []RouteBounds  `json:"bounds,omitempty"`
	// Relax answers with the rational relaxation (the LP upper bound
	// and its fractional allocation) instead of the session's integer
	// heuristic. Implied when Bounds is non-empty.
	Relax bool `json:"relax,omitempty"`
}

// BatchWhatIfRequest asks N hypotheticals against one session in a
// single round trip. Every query is answered with the rational
// relaxation (Relax is implied — batch reports carry no heuristic
// allocation) against the same committed session state, decoded once,
// deduplicated by canonical JSON (the single-flight key the
// one-query endpoint uses) and fanned out over a bounded pool of
// forked solve contexts. Answers are identical to issuing each query
// through POST /sessions/{id}/whatif with Relax set, at 1e-9.
type BatchWhatIfRequest struct {
	Queries []WhatIfRequest `json:"queries"`
	// Workers bounds the fork pool; <= 0 uses the service default.
	// The pool never exceeds the number of distinct queries.
	Workers int `json:"workers,omitempty"`
}

// BatchWhatIfResponse answers POST /sessions/{id}/whatif/batch.
// Reports line up with Queries; a duplicate query's report is a copy
// of its twin's with Coalesced set. Reports are lean — value, bound
// and feasibility only, no allocation tables and no stats snapshot —
// so the response is deterministic byte for byte and a batch over the
// wire diffs clean against cmd/dlsched -batch.
type BatchWhatIfResponse struct {
	Reports []*SolveReport `json:"reports"`
	// Distinct counts the unique queries actually solved.
	Distinct int `json:"distinct"`
	// Workers is the fork-pool width used.
	Workers int `json:"workers"`
	// Epoch is the committed session epoch every answer was computed
	// against.
	Epoch int `json:"epoch"`
}

// EpochRequest commits one epoch of capacity drift to the session —
// the adapt.Perturbation factors, applied to the session's current
// platform — and re-solves warm from the carried basis. Nil factor
// slices leave that capacity class unchanged; otherwise lengths must
// match the platform (clusters for gateway/speed, links for link).
type EpochRequest struct {
	GatewayFactor []float64 `json:"gatewayFactor,omitempty"`
	SpeedFactor   []float64 `json:"speedFactor,omitempty"`
	LinkFactor    []float64 `json:"linkFactor,omitempty"`
}

// SolveReport is one solve's answer — the service's query/what-if/
// epoch response body, and cmd/dlsched's -json output.
type SolveReport struct {
	Heuristic string `json:"heuristic"`
	Objective string `json:"objective"`
	// Feasible is false only for bound what-ifs whose β box admits no
	// solution; the allocation fields are then absent.
	Feasible bool `json:"feasible"`
	// Value is the allocation's objective value; for relaxation
	// answers it equals LPBound.
	Value float64 `json:"value"`
	// LPBound is the rational relaxation's optimum under the same
	// capacities — the upper bound the paper's tables normalize by.
	LPBound float64 `json:"lpBound"`
	// Throughputs is α_k = Σ_l α_{k,l} per application.
	Throughputs []float64   `json:"throughputs,omitempty"`
	Alpha       [][]float64 `json:"alpha,omitempty"`
	// Beta holds the integer connection counts (heuristic answers).
	Beta [][]int `json:"beta,omitempty"`
	// BetaFrac holds the fractional β̃ of relaxation answers.
	BetaFrac [][]float64 `json:"betaFrac,omitempty"`
	// Relaxed marks relaxation answers (Relax/Bounds what-ifs).
	Relaxed bool `json:"relaxed,omitempty"`
	// Epoch is the session epoch the answer was computed at (0 for
	// batch CLI reports).
	Epoch int `json:"epoch"`
	// Coalesced marks an answer shared from an identical concurrent
	// what-if rather than solved separately.
	Coalesced bool `json:"coalesced,omitempty"`
	// Cached marks an answer served from the committed-state answer
	// cache instead of solved. Apart from this flag the report is
	// byte-identical to the solve that populated the cache (including
	// its solver-stats snapshot, which is frozen at population time).
	Cached bool `json:"cached,omitempty"`
	// Stats snapshots the session's cumulative solver counters after
	// this solve (for a batch CLI report: the counters of just this
	// run).
	Stats *lp.Stats `json:"stats,omitempty"`
}

// SessionStats is one session's /stats row.
type SessionStats struct {
	SessionInfo
	Queries          uint64 `json:"queries"`
	WhatIfs          uint64 `json:"whatIfs"`
	CoalescedWhatIfs uint64 `json:"coalescedWhatIfs"`
	Epochs           uint64 `json:"epochs"`
	// CacheHits/CacheMisses count this session's answer-cache
	// activity (queries and what-ifs served without a solve vs cache
	// consults that went on to solve).
	CacheHits   uint64 `json:"cacheHits"`
	CacheMisses uint64 `json:"cacheMisses"`
	// Solver is the session's cumulative lp.Revised counters: the
	// warm/cold solve split, pivots, refactorizations, bound flips —
	// and, since the observability layer, wall time per simplex phase.
	Solver lp.Stats `json:"solver"`
	// Conditions are the session's evaluated health conditions
	// (warm-pivot headroom, cache hit rate, commit staleness and — on
	// ring nodes — replication lag). Empty in responses assembled
	// without a condition evaluator (bare Pool.Stats).
	Conditions []Condition `json:"conditions,omitempty"`
}

// PoolStatsResponse is the /stats response body.
type PoolStatsResponse struct {
	Capacity  int     `json:"capacity"`
	Live      int     `json:"live"`
	Hits      uint64  `json:"hits"`
	Misses    uint64  `json:"misses"`
	Evictions uint64  `json:"evictions"`
	HitRate   float64 `json:"hitRate"`
	// Retired aggregates the solver counters of evicted sessions.
	Retired lp.Stats `json:"retired"`
	// Total aggregates Retired plus every live session's counters.
	Total    lp.Stats       `json:"total"`
	Sessions []SessionStats `json:"sessions"`
	// Cluster aggregates the cluster counters pool-wide: answer-cache
	// activity merged over live and retired sessions, plus — when the
	// process runs as a ring node — this replica's routing, migration,
	// rebuild and snapshot-persistence counters.
	Cluster ClusterStats `json:"cluster"`
}

// ClusterStats is the /stats cluster section.
type ClusterStats struct {
	// CacheHits/CacheMisses merge every session's answer-cache
	// counters (live sessions plus the retired aggregate), like the
	// solver totals above.
	CacheHits   uint64 `json:"cacheHits"`
	CacheMisses uint64 `json:"cacheMisses"`
	// Forwarded counts requests this replica proxied to their ring
	// owner; Migrations counts sessions this replica shipped away on
	// membership change.
	Forwarded  uint64 `json:"forwarded"`
	Migrations uint64 `json:"migrations"`
	// WarmRebuilds/ColdRebuilds count sessions rebuilt from snapshots
	// (recovery or inbound migration): warm means the restored basis
	// restarted the solver with zero cold solves, cold that the solver
	// had to fall back. SnapshotBytes accumulates the encoded size of
	// every snapshot persisted to this replica's store.
	WarmRebuilds  uint64 `json:"warmRebuilds"`
	ColdRebuilds  uint64 `json:"coldRebuilds"`
	SnapshotBytes uint64 `json:"snapshotBytes"`
	// Replication is the configured copy count per session (owner
	// included). ReplicasHeld counts passive replicas currently held
	// for other members; ReplicasSent/ReplicaErrors count outbound
	// snapshot fan-outs (acked vs failed); Promotions counts passive
	// replicas turned into live sessions (failover or ownership
	// change).
	Replication   int    `json:"replication,omitempty"`
	ReplicasHeld  int    `json:"replicasHeld,omitempty"`
	ReplicasSent  uint64 `json:"replicasSent,omitempty"`
	ReplicaErrors uint64 `json:"replicaErrors,omitempty"`
	Promotions    uint64 `json:"promotions,omitempty"`
	// Retries counts forwarding re-sends; Failovers the subset that
	// went to a ring successor instead of the primary owner;
	// FencedCommits the epoch commits rejected because this replica
	// lacked membership quorum.
	Retries       uint64 `json:"retries,omitempty"`
	Failovers     uint64 `json:"failovers,omitempty"`
	FencedCommits uint64 `json:"fencedCommits,omitempty"`
	// RoutingLoops counts forwarded requests rejected for exceeding
	// the forwarding hop bound (508 Loop Detected).
	RoutingLoops uint64 `json:"routingLoops,omitempty"`
	// Incarnation is this member's failure-detector incarnation;
	// PeersAlive/PeersSuspect/PeersDead count the peers per state.
	Incarnation  uint64 `json:"incarnation,omitempty"`
	PeersAlive   int    `json:"peersAlive,omitempty"`
	PeersSuspect int    `json:"peersSuspect,omitempty"`
	PeersDead    int    `json:"peersDead,omitempty"`
	// Self and Members describe the ring from this replica's view;
	// empty when the process is not running as a ring node.
	Self    string   `json:"self,omitempty"`
	Members []string `json:"members,omitempty"`
}

// ErrorResponse is the body of every non-2xx answer.
type ErrorResponse struct {
	Error string `json:"error"`
}
