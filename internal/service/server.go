package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"strings"

	"repro/internal/obs"
	"repro/internal/platform"
)

// maxBodyBytes bounds uploaded request bodies (platform JSON included)
// so a hostile client cannot balloon the process.
const maxBodyBytes = 16 << 20

// Server is the HTTP/JSON front of a session pool.
//
// Routes:
//
//	POST   /sessions               create or re-attach (CreateSessionRequest → CreateSessionResponse)
//	GET    /sessions               list live sessions ([]SessionInfo)
//	GET    /sessions/{id}          one session's info
//	GET    /sessions/{id}/platform the session's current platform JSON
//	DELETE /sessions/{id}          evict
//	POST   /sessions/{id}/query    committed allocation + objective (SolveReport)
//	POST   /sessions/{id}/whatif   WhatIfRequest → SolveReport, rolled back
//	POST   /sessions/{id}/whatif/batch  BatchWhatIfRequest → BatchWhatIfResponse, forked contexts
//	POST   /sessions/{id}/epoch    EpochRequest → SolveReport, committed
//	GET    /stats                  PoolStatsResponse (with health conditions)
//	GET    /healthz                health probe: 200 ok, 503 when any condition is Degraded
//	GET    /metrics                Prometheus text exposition
//
// Every response carries the request's trace ID in X-Schedd-Trace
// (adopted from the request when the client supplies one, minted at
// ingress otherwise); latencies are recorded per endpoint and per
// session, and one structured request line is logged per request.
type Server struct {
	pool     *Pool
	reg      *obs.Registry
	metrics  *serverMetrics
	logger   *slog.Logger
	health   HealthThresholds
	condHook func(sessionID string) []Condition
}

// NewServer wraps a pool in the HTTP API.
func NewServer(pool *Pool) *Server {
	s := &Server{
		pool:   pool,
		reg:    obs.NewRegistry(),
		logger: discardLogger(),
		health: DefaultHealthThresholds(),
	}
	s.metrics = newServerMetrics(s.reg, s)
	return s
}

// Pool returns the server's session pool.
func (s *Server) Pool() *Pool { return s.pool }

// Handler returns the service's route table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /sessions", s.handleCreate)
	mux.HandleFunc("GET /sessions", s.handleList)
	mux.HandleFunc("GET /sessions/{id}", s.handleInfo)
	mux.HandleFunc("GET /sessions/{id}/platform", s.handlePlatform)
	mux.HandleFunc("DELETE /sessions/{id}", s.handleDelete)
	mux.HandleFunc("POST /sessions/{id}/query", s.handleQuery)
	mux.HandleFunc("POST /sessions/{id}/whatif", s.handleWhatIf)
	mux.HandleFunc("POST /sessions/{id}/whatif/batch", s.handleWhatIfBatch)
	mux.HandleFunc("POST /sessions/{id}/epoch", s.handleEpoch)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.Handle("GET /metrics", s.reg.Handler())
	return s.instrument(mux)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // nothing to do about a failed write
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, ErrorResponse{Error: err.Error()})
}

// decodeBody strictly decodes one JSON value into dst.
func decodeBody(w http.ResponseWriter, r *http.Request, dst any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return false
	}
	return true
}

// isClientError classifies solve-path errors: validation and
// modelling complaints are the client's fault (400), anything else is
// a server failure (500). Session code marks its own invariant
// violations with an "internal error" prefix, which always wins —
// "heuristic produced an invalid allocation" is a server bug even
// though it contains "invalid".
func isClientError(err error) bool {
	msg := err.Error()
	if strings.Contains(msg, "internal error") {
		return false
	}
	for _, marker := range []string{"invalid", "out of range", "unknown", "platform:", "adapt:", "no β variable", "payoffs for"} {
		if strings.Contains(msg, marker) {
			return true
		}
	}
	return false
}

func solveStatus(err error) int {
	if isClientError(err) {
		return http.StatusBadRequest
	}
	return http.StatusInternalServerError
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	var req CreateSessionRequest
	if !decodeBody(w, r, &req) {
		return
	}
	sess, rep, created, err := s.pool.GetOrCreate(&req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if rep == nil {
		// Pool hit: the session may have drifted since its creation
		// report, so answer with a fresh warm query.
		rep, err = sess.Query()
		if err != nil {
			writeError(w, solveStatus(err), err)
			return
		}
	}
	status := http.StatusOK
	if created {
		status = http.StatusCreated
	}
	writeJSON(w, status, CreateSessionResponse{
		SessionInfo: sess.Info(),
		Created:     created,
		Report:      rep,
	})
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	sessions := s.pool.Sessions()
	infos := make([]SessionInfo, 0, len(sessions))
	for _, sess := range sessions {
		infos = append(infos, sess.Info())
	}
	writeJSON(w, http.StatusOK, infos)
}

// session resolves the {id} path parameter, answering 404 itself when
// absent.
func (s *Server) session(w http.ResponseWriter, r *http.Request) *Session {
	id := r.PathValue("id")
	sess := s.pool.Get(id)
	if sess == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("no session %q", id))
		return nil
	}
	return sess
}

func (s *Server) handleInfo(w http.ResponseWriter, r *http.Request) {
	if sess := s.session(w, r); sess != nil {
		writeJSON(w, http.StatusOK, sess.Info())
	}
}

func (s *Server) handlePlatform(w http.ResponseWriter, r *http.Request) {
	sess := s.session(w, r)
	if sess == nil {
		return
	}
	data, err := sess.PlatformJSON()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(data)         //nolint:errcheck
	w.Write([]byte("\n")) //nolint:errcheck
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !s.pool.Evict(id) {
		writeError(w, http.StatusNotFound, fmt.Errorf("no session %q", id))
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"evicted": id})
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	sess := s.session(w, r)
	if sess == nil {
		return
	}
	rep, err := sess.Query()
	if err != nil {
		writeError(w, solveStatus(err), err)
		return
	}
	writeJSON(w, http.StatusOK, rep)
}

func (s *Server) handleWhatIf(w http.ResponseWriter, r *http.Request) {
	sess := s.session(w, r)
	if sess == nil {
		return
	}
	var req WhatIfRequest
	if !decodeBody(w, r, &req) {
		return
	}
	rep, err := sess.WhatIf(&req)
	if err != nil {
		writeError(w, solveStatus(err), err)
		return
	}
	writeJSON(w, http.StatusOK, rep)
}

func (s *Server) handleWhatIfBatch(w http.ResponseWriter, r *http.Request) {
	sess := s.session(w, r)
	if sess == nil {
		return
	}
	var req BatchWhatIfRequest
	if !decodeBody(w, r, &req) {
		return
	}
	resp, err := sess.WhatIfBatch(&req)
	if err != nil {
		writeError(w, solveStatus(err), err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleEpoch(w http.ResponseWriter, r *http.Request) {
	sess := s.session(w, r)
	if sess == nil {
		return
	}
	var req EpochRequest
	if !decodeBody(w, r, &req) {
		return
	}
	rep, err := sess.EpochIdempotent(&req, r.Header.Get(commitIDHeader))
	if err != nil {
		writeError(w, solveStatus(err), err)
		return
	}
	writeJSON(w, http.StatusOK, rep)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

// Batch runs the service's solve path once, without a server: decode
// and validate the platform, build the warm model, cold-solve. It is
// what cmd/dlsched -json uses, so a CLI report and a service query
// for the same platform and configuration produce identical numbers.
func Batch(req *CreateSessionRequest) (*SolveReport, error) {
	cfg, err := parseConfig(req)
	if err != nil {
		return nil, err
	}
	if len(req.Platform) == 0 {
		return nil, errors.New("missing platform")
	}
	pl, err := platform.Decode(req.Platform)
	if err != nil {
		return nil, err
	}
	_, rep, err := newSession(pl, cfg)
	return rep, err
}
