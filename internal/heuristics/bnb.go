package heuristics

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/lp"
)

// ErrNodeBudget is returned by BranchAndBound when the node budget is
// exhausted before the search tree is closed; the incumbent returned
// alongside is then only a lower bound, not a proven optimum.
var ErrNodeBudget = fmt.Errorf("heuristics: branch-and-bound node budget exhausted")

// BnBMode selects the node-relaxation strategy of BranchAndBound.
type BnBMode int

const (
	// BnBWarm (the default) builds one core.Model for the whole tree
	// and re-solves each node with the revised simplex, warm-started
	// from the parent node's optimal basis — a branch tightens one β
	// variable's native bounds, leaving the constraint matrix (and
	// the basis dimension) untouched, so each child typically needs
	// only a few dual-simplex pivots.
	BnBWarm BnBMode = iota
	// BnBColdDense cold-solves every node relaxation with the dense
	// tableau backend. It is the pre-refactor reference path, kept for
	// the cold-vs-warm benchmarks and numerical cross-checks.
	BnBColdDense
)

// BranchAndBound solves the mixed program (7) exactly by
// branch-and-bound on the integer β variables, using the explicit
// (α,β) relaxation of core.Model for node bounds. The problem is
// NP-hard (paper §4, Theorem 1), so this is only practical for small
// platforms (K up to ~6-8); it exists to measure how close the
// polynomial heuristics get to the true optimum, which the paper
// could not do ("solving the mixed LP problem for the optimal
// solution takes exponential time; consequently we cannot use it in
// practice").
//
// maxNodes bounds the search; <= 0 means a default of 10,000 nodes.
// The returned allocation is the best integer-feasible point found.
func BranchAndBound(pr *core.Problem, obj core.Objective, maxNodes int) (*core.Allocation, float64, error) {
	return BranchAndBoundMode(pr, obj, maxNodes, BnBWarm)
}

// BranchAndBoundMode is BranchAndBound with an explicit
// node-relaxation strategy; see BnBMode.
func BranchAndBoundMode(pr *core.Problem, obj core.Objective, maxNodes int, mode BnBMode) (*core.Allocation, float64, error) {
	model, err := pr.NewModel(obj)
	if err != nil {
		return nil, 0, err
	}
	alloc, best, _, err := branchAndBoundOnModel(model, pr, obj, maxNodes, mode, nil, nil)
	return alloc, best, err
}

// BranchAndBoundOnModel is the warm-epoch entry point of the exact
// solver: it searches over a caller-provided persistent core.Model
// (β bounds are reset per node as usual) and warm-starts the root
// relaxation from `root`, typically the previous epoch's root basis.
// pr must share the model's platform structure; its capacities may
// differ — inject the epoch's capacities into the model with
// SetSpeed / SetGateway / SetLinkBudget before calling.
//
// A non-nil `incumbent` seeds the search with a known feasible
// allocation — the §1 adaptability scenario injects the previous
// epoch's optimum, throttled to the new capacities (adapt.Throttle),
// so most of the tree prunes immediately when the platform drifts
// only a little. An incumbent that fails CheckAllocation on pr is
// ignored rather than rejected.
//
// The returned basis snapshots the root relaxation's optimal basis
// for the next epoch's warm start.
func BranchAndBoundOnModel(model *core.Model, pr *core.Problem, obj core.Objective, maxNodes int, root *lp.Basis, incumbent *core.Allocation) (*core.Allocation, float64, *lp.Basis, error) {
	return branchAndBoundOnModel(model, pr, obj, maxNodes, BnBWarm, root, incumbent)
}

func branchAndBoundOnModel(model *core.Model, pr *core.Problem, obj core.Objective, maxNodes int, mode BnBMode, root *lp.Basis, warmIncumbent *core.Allocation) (*core.Allocation, float64, *lp.Basis, error) {
	if maxNodes <= 0 {
		maxNodes = 10000
	}
	// Incumbent: start from LPRG, which is cheap and always feasible.
	// The warm path reuses the model (and the root basis) so even the
	// incumbent costs no cold LP build; the cold-dense reference path
	// keeps the historical one-shot LPRG.
	var (
		incumbent *core.Allocation
		rootBasis *lp.Basis
		err       error
	)
	if mode == BnBWarm {
		incumbent, rootBasis, err = LPRGOnModel(model, pr, obj, root)
	} else {
		incumbent, err = LPRG(pr, obj)
	}
	if err != nil {
		return nil, 0, nil, err
	}
	if err := pr.CheckAllocation(incumbent, core.DefaultTol); err != nil {
		return nil, 0, nil, fmt.Errorf("heuristics: LPRG produced an invalid incumbent: %w", err)
	}
	best := pr.Objective(obj, incumbent)
	if warmIncumbent != nil && pr.CheckAllocation(warmIncumbent, core.DefaultTol) == nil {
		if val := pr.Objective(obj, warmIncumbent); val > best {
			best = val
			incumbent = warmIncumbent
		}
	}

	type node struct {
		bounds map[core.Pair]core.BetaBounds
		// basis is the parent relaxation's optimal basis; the child's
		// bound set differs from the parent's by one variable-bound
		// change, so it is one dual-simplex restart away (warm mode
		// only).
		basis *lp.Basis
	}
	stack := []node{{bounds: map[core.Pair]core.BetaBounds{}, basis: rootBasis}}
	nodes := 0
	for len(stack) > 0 {
		if nodes >= maxNodes {
			return incumbent, best, rootBasis, ErrNodeBudget
		}
		nodes++
		nd := stack[len(stack)-1]
		stack = stack[:len(stack)-1]

		model.ResetBounds()
		for p, b := range nd.bounds {
			if err := model.SetBounds(p, b); err != nil {
				return nil, 0, nil, err
			}
		}
		var (
			rel   *core.MixedSolution
			basis *lp.Basis
			ok    bool
		)
		switch mode {
		case BnBColdDense:
			rel, ok, err = model.SolveWith(lp.DenseSolver{})
		default:
			rel, basis, ok, err = model.Solve(nd.basis)
		}
		if err != nil {
			return nil, 0, nil, err
		}
		if !ok {
			continue // infeasible subtree
		}
		if rel.Objective <= best+1e-9*(1+math.Abs(best)) {
			continue // bound cannot beat the incumbent
		}
		p, fractional := rel.MostFractional(core.IntegralityTol)
		if !fractional {
			// Integer-feasible: round the (near-integral) β and keep
			// the α values.
			cand := core.NewAllocation(pr.K())
			for k := range rel.Alpha {
				copy(cand.Alpha[k], rel.Alpha[k])
			}
			for q, v := range rel.Beta {
				cand.Beta[q.K][q.L] = int(math.Round(v))
			}
			if err := pr.CheckAllocation(cand, core.DefaultTol); err != nil {
				return nil, 0, nil, fmt.Errorf("heuristics: BnB produced an invalid candidate: %w", err)
			}
			if val := pr.Objective(obj, cand); val > best {
				best = val
				incumbent = cand
			}
			continue
		}
		// Branch: β_p <= floor  |  β_p >= floor+1. Entries absent from
		// the bounds map mean [0, +inf), i.e. Lb=0, Ub=-1.
		v := rel.Beta[p]
		floor := math.Floor(v)
		down := cloneBounds(nd.bounds)
		b := boundsOf(down, p)
		if b.Ub < 0 || floor < b.Ub {
			b.Ub = floor
		}
		down[p] = b
		up := cloneBounds(nd.bounds)
		b = boundsOf(up, p)
		if floor+1 > b.Lb {
			b.Lb = floor + 1
		}
		up[p] = b
		stack = append(stack, node{bounds: down, basis: basis}, node{bounds: up, basis: basis})
	}
	return incumbent, best, rootBasis, nil
}

// boundsOf reads the effective bounds of p in m, defaulting absent
// entries to [0, +inf) (Ub = -1 means unbounded above).
func boundsOf(m map[core.Pair]core.BetaBounds, p core.Pair) core.BetaBounds {
	if b, ok := m[p]; ok {
		return b
	}
	return core.BetaBounds{Lb: 0, Ub: -1}
}

func cloneBounds(in map[core.Pair]core.BetaBounds) map[core.Pair]core.BetaBounds {
	out := make(map[core.Pair]core.BetaBounds, len(in)+1)
	for k, v := range in {
		out[k] = v
	}
	return out
}
