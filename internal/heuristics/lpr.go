package heuristics

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/platform"
)

// snapEps absorbs LP roundoff before flooring, so a β̃ of 2.9999999995
// rounds down to 3, not 2.
const snapEps = 1e-7

// LPR is the paper's round-off heuristic (§5.2.1): solve the rational
// relaxation, floor every β̃_{k,l} to an integer, and shrink each
// α̃_{k,l} to fit the rounded connection count:
//
//	β̂_{k,l} = ⌊β̃_{k,l}⌋
//	α̂_{k,l} = min(α̃_{k,l}, β̂_{k,l}·min bw(L_{k,l}))
//
// Routes whose path crosses no backbone link keep their α unchanged
// (no connection constraint applies there).
func LPR(pr *core.Problem, obj core.Objective) (*core.Allocation, error) {
	rel, ok, err := pr.Relaxed(obj, nil)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("heuristics: relaxation infeasible on an unconstrained platform (model bug)")
	}
	alloc, _ := roundDown(pr, rel)
	return alloc, nil
}

// roundDown applies the LPR rounding to a relaxed solution and also
// returns the residual platform capacity left over (consumed by the
// greedy refinement of LPRG).
func roundDown(pr *core.Problem, rel *core.RelaxedSolution) (*core.Allocation, *platform.Residual) {
	K := pr.K()
	pl := pr.Platform
	alloc := core.NewAllocation(K)
	res := platform.NewResidual(pl)
	for k := 0; k < K; k++ {
		for l := 0; l < K; l++ {
			a := rel.Alpha[k][l]
			if a <= 0 {
				continue
			}
			if k == l {
				alloc.Alpha[k][k] = math.Min(a, res.Speed[k])
				res.Speed[k] -= alloc.Alpha[k][k]
				continue
			}
			rt := pl.Route(k, l)
			if !rt.Exists {
				continue
			}
			var capA float64
			var beta int
			if math.IsInf(rt.MinBW, 1) {
				// Same-router route: only gateways constrain it.
				capA = a
			} else {
				beta = int(math.Floor(rel.BetaFrac[k][l] + snapEps))
				if beta < 0 {
					beta = 0
				}
				capA = float64(beta) * rt.MinBW
			}
			a = minFloat(a, capA, res.Speed[l], res.Gateway[k], res.Gateway[l])
			if a < greedyTol {
				a = 0
				// A zero α does not need its connections; drop them so
				// the residual budget is not pointlessly consumed.
				beta = 0
			}
			alloc.Alpha[k][l] = a
			alloc.Beta[k][l] = beta
			res.Speed[l] -= a
			res.Gateway[k] -= a
			res.Gateway[l] -= a
			for _, li := range rt.Links {
				res.MaxConnect[li] -= beta
				if res.MaxConnect[li] < 0 {
					res.MaxConnect[li] = 0 // defensive; cannot happen with a feasible relaxation
				}
			}
		}
	}
	clampResidual(res)
	return alloc, res
}

// LPRG is the paper's round-off + greedy heuristic (§5.2.2): LPR
// gives the basic framework of the solution, and the greedy pass of
// §5.1 reclaims the residual network and compute capacity that the
// flooring discarded.
func LPRG(pr *core.Problem, obj core.Objective) (*core.Allocation, error) {
	rel, ok, err := pr.Relaxed(obj, nil)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("heuristics: relaxation infeasible on an unconstrained platform (model bug)")
	}
	alloc, res := roundDown(pr, rel)
	greedyFill(pr, res, alloc, false)
	return alloc, nil
}
