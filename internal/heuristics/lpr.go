package heuristics

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/lp"
	"repro/internal/platform"
)

// snapEps absorbs LP roundoff before flooring, so a β̃ of 2.9999999995
// rounds down to 3, not 2.
const snapEps = 1e-7

// LPR is the paper's round-off heuristic (§5.2.1): solve the rational
// relaxation, floor every β̃_{k,l} to an integer, and shrink each
// α̃_{k,l} to fit the rounded connection count:
//
//	β̂_{k,l} = ⌊β̃_{k,l}⌋
//	α̂_{k,l} = min(α̃_{k,l}, β̂_{k,l}·min bw(L_{k,l}))
//
// Routes whose path crosses no backbone link keep their α unchanged
// (no connection constraint applies there).
func LPR(pr *core.Problem, obj core.Objective) (*core.Allocation, error) {
	rel, ok, err := pr.Relaxed(obj, nil)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("heuristics: relaxation infeasible on an unconstrained platform (model bug)")
	}
	alloc, _ := roundDown(pr, rel)
	return alloc, nil
}

// roundDown applies the LPR rounding to a relaxed solution and also
// returns the residual platform capacity left over (consumed by the
// greedy refinement of LPRG).
func roundDown(pr *core.Problem, rel *core.RelaxedSolution) (*core.Allocation, *platform.Residual) {
	K := pr.K()
	pl := pr.Platform
	alloc := core.NewAllocation(K)
	res := platform.NewResidual(pl)
	for k := 0; k < K; k++ {
		for l := 0; l < K; l++ {
			a := rel.Alpha[k][l]
			if a <= 0 {
				continue
			}
			if k == l {
				alloc.Alpha[k][k] = math.Min(a, res.Speed[k])
				res.Speed[k] -= alloc.Alpha[k][k]
				continue
			}
			rt := pl.Route(k, l)
			if !rt.Exists {
				continue
			}
			var capA float64
			var beta int
			if math.IsInf(rt.MinBW, 1) {
				// Same-router route: only gateways constrain it.
				capA = a
			} else {
				beta = int(math.Floor(rel.BetaFrac[k][l] + snapEps))
				if beta < 0 {
					beta = 0
				}
				capA = float64(beta) * rt.MinBW
			}
			a = minFloat(a, capA, res.Speed[l], res.Gateway[k], res.Gateway[l])
			if a < greedyTol {
				a = 0
				// A zero α does not need its connections; drop them so
				// the residual budget is not pointlessly consumed.
				beta = 0
			}
			alloc.Alpha[k][l] = a
			alloc.Beta[k][l] = beta
			res.Speed[l] -= a
			res.Gateway[k] -= a
			res.Gateway[l] -= a
			for _, li := range rt.Links {
				res.MaxConnect[li] -= beta
				if res.MaxConnect[li] < 0 {
					res.MaxConnect[li] = 0 // defensive; cannot happen with a feasible relaxation
				}
			}
		}
	}
	clampResidual(res)
	return alloc, res
}

// LPRG is the paper's round-off + greedy heuristic (§5.2.2): LPR
// gives the basic framework of the solution, and the greedy pass of
// §5.1 reclaims the residual network and compute capacity that the
// flooring discarded.
func LPRG(pr *core.Problem, obj core.Objective) (*core.Allocation, error) {
	rel, ok, err := pr.Relaxed(obj, nil)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("heuristics: relaxation infeasible on an unconstrained platform (model bug)")
	}
	alloc, res := roundDown(pr, rel)
	greedyFill(pr, res, alloc, false)
	return alloc, nil
}

// LPRGOnModel is LPRG running over a caller-provided persistent
// core.Model instead of a fresh one-shot LP: β bounds are reset, the
// relaxation re-solves warm from `from`, and the round-off + greedy
// refinement evaluates against pr's capacities. pr must share the
// model's platform structure (routes and links); its capacities may
// differ — the adaptability scenario, where the caller has already
// injected the epoch's capacities into the model with SetSpeed /
// SetGateway / SetLinkBudget. The returned basis snapshots the
// relaxation's optimal basis for the next warm start.
func LPRGOnModel(model *core.Model, pr *core.Problem, obj core.Objective, from *lp.Basis) (*core.Allocation, *lp.Basis, error) {
	rel, basis, err := solveRelaxationOnModel(model, pr, from)
	if err != nil {
		return nil, nil, err
	}
	alloc, res := roundDown(pr, rel)
	greedyFill(pr, res, alloc, false)
	return alloc, basis, nil
}

// solveRelaxationOnModel resets the model's β bounds, re-solves the
// relaxation warm from `from`, and reshapes the explicit (α, β)
// solution into core.Relaxed's α-space form (BetaFrac = α/bw_min on
// free remote routes, exactly as core.Relaxed defines it).
func solveRelaxationOnModel(model *core.Model, pr *core.Problem, from *lp.Basis) (*core.RelaxedSolution, *lp.Basis, error) {
	model.ResetBounds()
	sol, basis, ok, err := model.Solve(from)
	if err != nil {
		return nil, nil, err
	}
	if !ok {
		return nil, nil, fmt.Errorf("heuristics: relaxation infeasible on an unconstrained platform (model bug)")
	}
	K := pr.K()
	rel := &core.RelaxedSolution{Objective: sol.Objective, Alpha: sol.Alpha, BetaFrac: make([][]float64, K)}
	for k := 0; k < K; k++ {
		rel.BetaFrac[k] = make([]float64, K)
		for l := 0; l < K; l++ {
			if k == l {
				continue
			}
			if bw := pr.Platform.RouteBW(k, l); bw > 0 && !math.IsInf(bw, 1) {
				rel.BetaFrac[k][l] = sol.Alpha[k][l] / bw
			}
		}
	}
	return rel, basis, nil
}
