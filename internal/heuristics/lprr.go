package heuristics

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/core"
	"repro/internal/lp"
)

// LPRRVariant selects the randomized-rounding probability rule.
type LPRRVariant int

const (
	// ProportionalRounding rounds β̃ up with probability equal to its
	// fractional part (the LPRR of §5.2.3, after Coudert & Rivano).
	ProportionalRounding LPRRVariant = iota
	// EqualRounding rounds up or down with probability 1/2 — the
	// control variant the paper reports performs much worse (§6.2).
	EqualRounding
)

func (v LPRRVariant) String() string {
	if v == EqualRounding {
		return "LPRR-EQ"
	}
	return "LPRR"
}

// LPRR is the paper's randomized round-off heuristic (§5.2.3). It
// fixes the β value of one route at a time: solve the rational
// relaxation with all previously pinned routes, pick an unpinned
// route at random among those with β̃ ≠ 0, round its β̃ up with
// probability equal to its fractional part (down otherwise), pin it,
// and iterate. Unpinned routes whose β̃ is 0 in the current solution
// are pinned to 0 in bulk when no nonzero candidate remains. The
// procedure solves up to K² linear programs, which is exactly the
// complexity the paper measures in Figure 7 — but where it once
// rebuilt and cold-solved a fresh LP per pin, it now holds one
// core.Model for the whole trial: a pin is a native variable-bound
// mutation (β_p fixed to v via lb = ub = v, leaving the constraint
// matrix untouched), so every re-solve warm-starts the revised
// simplex from the previous pin's optimal basis.
//
// With integral max-connect values a round-up can never make the pin
// set infeasible (DESIGN.md); if infeasibility is ever reported (for
// hand-built platforms with exotic routes), the round-up is retried
// as a round-down.
func LPRR(pr *core.Problem, obj core.Objective, variant LPRRVariant, rng *rand.Rand) (*core.Allocation, error) {
	model, err := pr.NewModel(obj)
	if err != nil {
		return nil, err
	}
	alloc, _, err := LPRROnModel(model, pr, obj, variant, rng, nil)
	return alloc, err
}

// LPRROnModel is LPRR running over a caller-provided persistent
// core.Model: previous pins are cleared (ResetBounds) and the initial
// relaxation warm-starts from `from`, typically the previous epoch's
// root basis. pr must share the model's platform structure; its
// capacities may differ — inject the epoch's capacities into the
// model with SetSpeed / SetGateway / SetLinkBudget before calling.
// The returned basis snapshots the initial (pin-free) relaxation's
// optimal basis for the next epoch's warm start.
func LPRROnModel(model *core.Model, pr *core.Problem, obj core.Objective, variant LPRRVariant, rng *rand.Rand, from *lp.Basis) (*core.Allocation, *lp.Basis, error) {
	routes := model.BetaVars() // == RemoteRoutes order
	fixed := make(map[core.Pair]int, len(routes))
	remaining := make(map[core.Pair]bool, len(routes))
	for _, p := range routes {
		remaining[p] = true
	}

	model.ResetBounds()
	rel, basis, ok, err := model.Solve(from)
	if err != nil {
		return nil, nil, err
	}
	if !ok {
		return nil, nil, fmt.Errorf("heuristics: initial relaxation infeasible (model bug)")
	}
	rootBasis := basis

	// betaFrac is the β̃ the rounding rule draws on: the fractional
	// connection count α̃/bw_min associated with the current relaxed
	// α, exactly as core.Relaxed's BetaFrac defines it.
	betaFrac := func(p core.Pair) float64 {
		if bw := pr.Platform.RouteBW(p.K, p.L); bw > 0 && !math.IsInf(bw, 1) {
			return rel.Alpha[p.K][p.L] / bw
		}
		return 0
	}

	for len(remaining) > 0 {
		// Candidates: unpinned routes with nonzero β̃ in the current
		// relaxed solution, in deterministic order for the rng draw.
		var candidates []core.Pair
		for _, p := range routes {
			if remaining[p] && betaFrac(p) > snapEps {
				candidates = append(candidates, p)
			}
		}
		if len(candidates) == 0 {
			// Everything left is zero in the relaxation: pin to 0.
			for p := range remaining {
				fixed[p] = 0
				if err := model.SetBounds(p, core.BetaBounds{Lb: 0, Ub: 0}); err != nil {
					return nil, nil, err
				}
			}
			break
		}
		p := candidates[rng.Intn(len(candidates))]
		bt := betaFrac(p)
		floor := int(math.Floor(bt + snapEps))
		frac := bt - float64(floor)
		if frac < 0 {
			frac = 0
		}
		up := 0
		switch variant {
		case ProportionalRounding:
			if rng.Float64() < frac {
				up = 1
			}
		case EqualRounding:
			if rng.Float64() < 0.5 {
				up = 1
			}
		default:
			return nil, nil, fmt.Errorf("heuristics: unknown LPRR variant %d", int(variant))
		}
		value := floor + up
		if err := pin(model, p, value); err != nil {
			return nil, nil, err
		}
		fixed[p] = value
		delete(remaining, p)

		next, nextBasis, ok, err := model.Solve(basis)
		if err != nil {
			return nil, nil, err
		}
		if !ok && up == 1 {
			// Exotic-platform fallback: retry with the floor.
			if err := pin(model, p, floor); err != nil {
				return nil, nil, err
			}
			fixed[p] = floor
			next, nextBasis, ok, err = model.Solve(basis)
			if err != nil {
				return nil, nil, err
			}
		}
		if !ok {
			return nil, nil, fmt.Errorf("heuristics: LPRR pin set became infeasible at route (%d,%d)", p.K, p.L)
		}
		rel, basis = next, nextBasis
	}

	// Final solve with every route pinned gives the α values.
	final, _, ok, err := model.Solve(basis)
	if err != nil {
		return nil, nil, err
	}
	if !ok {
		return nil, nil, fmt.Errorf("heuristics: final LPRR relaxation infeasible")
	}
	return allocationFromPinned(pr, final.Alpha, fixed), rootBasis, nil
}

func pin(model *core.Model, p core.Pair, v int) error {
	return model.SetBounds(p, core.BetaBounds{Lb: float64(v), Ub: float64(v)})
}

// allocationFromPinned assembles an integer-β allocation from relaxed
// α values whose remote backbone routes are all pinned.
func allocationFromPinned(pr *core.Problem, alpha [][]float64, fixed map[core.Pair]int) *core.Allocation {
	K := pr.K()
	alloc := core.NewAllocation(K)
	for k := 0; k < K; k++ {
		for l := 0; l < K; l++ {
			a := alpha[k][l]
			if a < 0 {
				a = 0
			}
			alloc.Alpha[k][l] = a
		}
	}
	for p, v := range fixed {
		alloc.Beta[p.K][p.L] = v
		bw := pr.Platform.RouteBW(p.K, p.L)
		if !math.IsInf(bw, 1) {
			if capA := float64(v) * bw; alloc.Alpha[p.K][p.L] > capA {
				alloc.Alpha[p.K][p.L] = capA // absorb LP roundoff
			}
		}
	}
	return alloc
}
