package heuristics

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/core"
)

// LPRRVariant selects the randomized-rounding probability rule.
type LPRRVariant int

const (
	// ProportionalRounding rounds β̃ up with probability equal to its
	// fractional part (the LPRR of §5.2.3, after Coudert & Rivano).
	ProportionalRounding LPRRVariant = iota
	// EqualRounding rounds up or down with probability 1/2 — the
	// control variant the paper reports performs much worse (§6.2).
	EqualRounding
)

func (v LPRRVariant) String() string {
	if v == EqualRounding {
		return "LPRR-EQ"
	}
	return "LPRR"
}

// LPRR is the paper's randomized round-off heuristic (§5.2.3). It
// fixes the β value of one route at a time: solve the rational
// relaxation with all previously pinned routes, pick an unpinned
// route at random among those with β̃ ≠ 0, round its β̃ up with
// probability equal to its fractional part (down otherwise), pin it,
// and iterate. Unpinned routes whose β̃ is 0 in the current solution
// are pinned to 0 in bulk when no nonzero candidate remains. The
// procedure solves up to K² linear programs, which is exactly the
// complexity the paper measures in Figure 7.
//
// With integral max-connect values a round-up can never make the pin
// set infeasible (DESIGN.md); if infeasibility is ever reported (for
// hand-built platforms with exotic routes), the round-up is retried
// as a round-down.
func LPRR(pr *core.Problem, obj core.Objective, variant LPRRVariant, rng *rand.Rand) (*core.Allocation, error) {
	routes := pr.RemoteRoutes()
	fixed := make(map[core.Pair]int, len(routes))
	remaining := make(map[core.Pair]bool, len(routes))
	for _, p := range routes {
		remaining[p] = true
	}

	rel, ok, err := pr.Relaxed(obj, fixed)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("heuristics: initial relaxation infeasible (model bug)")
	}

	for len(remaining) > 0 {
		// Candidates: unpinned routes with nonzero β̃ in the current
		// relaxed solution, in deterministic order for the rng draw.
		var candidates []core.Pair
		for _, p := range routes {
			if remaining[p] && rel.BetaFrac[p.K][p.L] > snapEps {
				candidates = append(candidates, p)
			}
		}
		if len(candidates) == 0 {
			// Everything left is zero in the relaxation: pin to 0.
			for p := range remaining {
				fixed[p] = 0
			}
			break
		}
		p := candidates[rng.Intn(len(candidates))]
		bt := rel.BetaFrac[p.K][p.L]
		floor := int(math.Floor(bt + snapEps))
		frac := bt - float64(floor)
		if frac < 0 {
			frac = 0
		}
		up := 0
		switch variant {
		case ProportionalRounding:
			if rng.Float64() < frac {
				up = 1
			}
		case EqualRounding:
			if rng.Float64() < 0.5 {
				up = 1
			}
		default:
			return nil, fmt.Errorf("heuristics: unknown LPRR variant %d", int(variant))
		}
		value := floor + up
		fixed[p] = value
		delete(remaining, p)

		next, ok, err := pr.Relaxed(obj, fixed)
		if err != nil {
			return nil, err
		}
		if !ok && up == 1 {
			// Exotic-platform fallback: retry with the floor.
			fixed[p] = floor
			next, ok, err = pr.Relaxed(obj, fixed)
			if err != nil {
				return nil, err
			}
		}
		if !ok {
			return nil, fmt.Errorf("heuristics: LPRR pin set became infeasible at route (%d,%d)", p.K, p.L)
		}
		rel = next
	}

	// Final solve with every route pinned gives the α values.
	final, ok, err := pr.Relaxed(obj, fixed)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("heuristics: final LPRR relaxation infeasible")
	}
	return allocationFromPinned(pr, final, fixed), nil
}

// allocationFromPinned assembles an integer-β allocation from a
// relaxed solution whose remote backbone routes are all pinned.
func allocationFromPinned(pr *core.Problem, rel *core.RelaxedSolution, fixed map[core.Pair]int) *core.Allocation {
	K := pr.K()
	alloc := core.NewAllocation(K)
	for k := 0; k < K; k++ {
		for l := 0; l < K; l++ {
			a := rel.Alpha[k][l]
			if a < 0 {
				a = 0
			}
			alloc.Alpha[k][l] = a
		}
	}
	for p, v := range fixed {
		alloc.Beta[p.K][p.L] = v
		bw := pr.Platform.RouteBW(p.K, p.L)
		if !math.IsInf(bw, 1) {
			if capA := float64(v) * bw; alloc.Alpha[p.K][p.L] > capA {
				alloc.Alpha[p.K][p.L] = capA // absorb LP roundoff
			}
		}
	}
	return alloc
}
