// Package heuristics implements the paper's five solution methods
// for the STEADY-STATE-DIVISIBLE-LOAD problem (§5): the greedy
// heuristic G, the LP-relaxation-based heuristics LPR (round down),
// LPRG (round down + greedy refinement) and LPRR (randomized
// rounding, including the equal-probability variant discussed in
// §6.2), plus an exact branch-and-bound solver for the mixed program
// (7) usable on small instances to calibrate the heuristics against
// the true optimum.
package heuristics

import (
	"math"

	"repro/internal/core"
	"repro/internal/platform"
)

// greedyTol treats residual quantities below this threshold as
// exhausted, which keeps the floating-point loop from spinning on
// crumbs.
const greedyTol = 1e-9

// Greedy runs the paper's greedy heuristic G (§5.1) on the full
// platform and returns the resulting valid allocation.
//
// Applications with payoff π_k ≤ 0 are excluded from the candidate
// list: they would otherwise always have the minimal relative share
// α_k·π_k = 0 and would soak up resources for zero payoff (the paper
// introduces zero payoffs precisely for clusters that do not wish to
// run an application).
//
// Faithful to §5.1, the local-computation step allocates only as much
// work as some other application could have executed on the cluster
// ("to prevent over-utilization of the local cluster early on").
// When that guard quantity is zero the application is dropped, which
// can strand residual local speed — observable in the paper's own
// Figure 5, where SUM(G) stays below the (trivially all-local) SUM
// upper bound. GreedyFullDrain is the ablation variant that instead
// allocates the full residual speed in that situation; the guard can
// only be zero when no other application can ever again use the
// cluster (all the quantities in it are non-increasing), so the
// variant strictly dominates G. See the ablation benchmarks.
func Greedy(pr *core.Problem) *core.Allocation {
	return greedy(pr, false)
}

// GreedyFullDrain is Greedy with the stranded-speed fix described in
// Greedy's documentation: when the §5.1 local-allocation guard is
// zero, the full residual local speed is allocated instead of
// dropping the application.
func GreedyFullDrain(pr *core.Problem) *core.Allocation {
	return greedy(pr, true)
}

func greedy(pr *core.Problem, fullDrain bool) *core.Allocation {
	alloc := core.NewAllocation(pr.K())
	res := platform.NewResidual(pr.Platform)
	greedyFill(pr, res, alloc, fullDrain)
	return alloc
}

// greedyFill applies the §5.1 greedy loop on top of an existing
// allocation and residual platform state. It is shared between G
// (fresh state) and LPRG (state left over after LP rounding).
func greedyFill(pr *core.Problem, res *platform.Residual, alloc *core.Allocation, fullDrain bool) {
	K := pr.K()
	live := make([]bool, K)
	n := 0
	for k := 0; k < K; k++ {
		if pr.Payoffs[k] > 0 {
			live[k] = true
			n++
		}
	}
	// Safety valve: each remote step consumes a connection slot and
	// each local step consumes residual speed, so the loop terminates;
	// the cap only guards against floating-point pathologies.
	totalSlots := 0
	for _, mc := range res.MaxConnect {
		totalSlots += mc
	}
	maxSteps := 100*K + totalSlots + 1000

	for step := 0; n > 0 && step < maxSteps; step++ {
		// Step 3: select the application with the smallest relative
		// share α_k·π_k, breaking ties by the larger payoff, then by
		// index (deterministic).
		k := -1
		for cand := 0; cand < K; cand++ {
			if !live[cand] {
				continue
			}
			if k == -1 {
				k = cand
				continue
			}
			sk := alloc.AppThroughput(cand) * pr.Payoffs[cand]
			sb := alloc.AppThroughput(k) * pr.Payoffs[k]
			if sk < sb-greedyTol || (math.Abs(sk-sb) <= greedyTol && pr.Payoffs[cand] > pr.Payoffs[k]) {
				k = cand
			}
		}

		// Step 4: select the most profitable target cluster.
		bestL, bestBenefit := -1, 0.0
		for l := 0; l < K; l++ {
			if b := benefit(pr, res, k, l); b > bestBenefit+greedyTol {
				bestBenefit = b
				bestL = l
			}
		}
		if bestL == -1 || bestBenefit <= greedyTol {
			live[k] = false
			n--
			continue
		}
		l := bestL

		// Step 5: decide the amount of work.
		var amount float64
		if l == k {
			// Local: allocate only as much as some other application
			// could have used on C^k, to avoid hogging the local
			// cluster early (§5.1 step 5).
			amount = 0
			for m := 0; m < K; m++ {
				if m == k {
					continue
				}
				cand := minFloat(res.Gateway[k], pr.Platform.RouteBW(m, k), res.Gateway[m], res.Speed[k])
				if !res.RouteOpen(m, k) {
					cand = 0
				}
				if cand > amount {
					amount = cand
				}
			}
			if amount <= greedyTol && fullDrain {
				// Ablation variant: the guard being zero means no other
				// application can ever again reach C^k (every quantity
				// in the guard is non-increasing), so the contention
				// concern is vacuous — drain the residual speed.
				amount = res.Speed[k]
			}
			if amount > res.Speed[k] {
				amount = res.Speed[k]
			}
			if amount <= greedyTol {
				// Faithful §5.1: drop the application, stranding any
				// residual local speed.
				live[k] = false
				n--
				continue
			}
			res.Speed[k] -= amount
			alloc.Alpha[k][k] += amount
			continue
		}
		// Remote: open one connection and ship the single-connection
		// benefit (step 6 updates).
		amount = bestBenefit
		res.Speed[l] -= amount
		res.Gateway[k] -= amount
		res.Gateway[l] -= amount
		res.OpenConnection(k, l)
		alloc.Alpha[k][l] += amount
		alloc.Beta[k][l]++
	}
	clampResidual(res)
}

// benefit computes the §5.1 step-4 benefit of running application k's
// work on cluster l under the current residual state: the residual
// speed for a local run, or the work a single new connection can
// carry for a remote run — min{g_k, g_{k,l}, g_l, s_l}, zero when the
// route has no free connection slot.
func benefit(pr *core.Problem, res *platform.Residual, k, l int) float64 {
	if l == k {
		return res.Speed[k]
	}
	if !res.RouteOpen(k, l) {
		return 0
	}
	b := minFloat(res.Gateway[k], pr.Platform.RouteBW(k, l), res.Gateway[l], res.Speed[l])
	if b < 0 {
		return 0
	}
	return b
}

func minFloat(vs ...float64) float64 {
	m := math.Inf(1)
	for _, v := range vs {
		if v < m {
			m = v
		}
	}
	return m
}

// clampResidual zeroes out tiny negative residues left by
// floating-point subtraction so later consumers see a sane state.
func clampResidual(res *platform.Residual) {
	for i := range res.Speed {
		if res.Speed[i] < 0 {
			res.Speed[i] = 0
		}
		if res.Gateway[i] < 0 {
			res.Gateway[i] = 0
		}
	}
}
