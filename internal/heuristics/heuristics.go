package heuristics

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/core"
)

// Name identifies one of the paper's solution methods.
type Name string

const (
	// NameG is the greedy heuristic of §5.1.
	NameG Name = "G"
	// NameLPR is round-off (§5.2.1).
	NameLPR Name = "LPR"
	// NameLPRG is round-off + greedy (§5.2.2).
	NameLPRG Name = "LPRG"
	// NameLPRR is randomized round-off (§5.2.3).
	NameLPRR Name = "LPRR"
	// NameLPRREQ is the equal-probability rounding control variant
	// discussed in §6.2.
	NameLPRREQ Name = "LPRR-EQ"
	// NameGFull is the G ablation that drains residual local speed
	// instead of stranding it (see Greedy's documentation). Not part
	// of the paper; used by the ablation benchmarks.
	NameGFull Name = "G-FULL"
)

// All lists the polynomial heuristics in the order the paper's
// experiments report them.
var All = []Name{NameG, NameLPR, NameLPRG, NameLPRR, NameLPRREQ}

// Result is the outcome of one heuristic run: the allocation, its
// objective value, and the wall-clock time spent (the quantity
// plotted in Figure 7).
type Result struct {
	Heuristic Name
	Objective core.Objective
	Alloc     *core.Allocation
	Value     float64
	Elapsed   time.Duration
}

// Run executes the named heuristic on the problem under the given
// objective. rng is only consulted by the randomized heuristics; it
// may be nil for the deterministic ones.
func Run(name Name, pr *core.Problem, obj core.Objective, rng *rand.Rand) (Result, error) {
	start := time.Now()
	var (
		alloc *core.Allocation
		err   error
	)
	switch name {
	case NameG:
		alloc = Greedy(pr)
	case NameGFull:
		alloc = GreedyFullDrain(pr)
	case NameLPR:
		alloc, err = LPR(pr, obj)
	case NameLPRG:
		alloc, err = LPRG(pr, obj)
	case NameLPRR:
		if rng == nil {
			return Result{}, fmt.Errorf("heuristics: %s requires an rng", name)
		}
		alloc, err = LPRR(pr, obj, ProportionalRounding, rng)
	case NameLPRREQ:
		if rng == nil {
			return Result{}, fmt.Errorf("heuristics: %s requires an rng", name)
		}
		alloc, err = LPRR(pr, obj, EqualRounding, rng)
	default:
		return Result{}, fmt.Errorf("heuristics: unknown heuristic %q", name)
	}
	if err != nil {
		return Result{}, err
	}
	return Result{
		Heuristic: name,
		Objective: obj,
		Alloc:     alloc,
		Value:     pr.Objective(obj, alloc),
		Elapsed:   time.Since(start),
	}, nil
}

// UpperBound solves the rational relaxation and returns its objective
// value — the paper's "LP" comparator, an upper bound on the optimal
// mixed-integer throughput, together with the time spent.
func UpperBound(pr *core.Problem, obj core.Objective) (float64, time.Duration, error) {
	start := time.Now()
	rel, ok, err := pr.Relaxed(obj, nil)
	if err != nil {
		return 0, 0, err
	}
	if !ok {
		return 0, 0, fmt.Errorf("heuristics: relaxation infeasible (model bug)")
	}
	return rel.Objective, time.Since(start), nil
}
