package heuristics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/platgen"
)

// star builds a platform with one source cluster (speed srcSpeed) and
// n worker clusters of speed 100, all pairwise links from the source
// router, each bw/maxcon as given, gateways 1000 (non-binding).
func star(srcSpeed float64, n int, bw float64, maxcon int) *platform.Platform {
	p := &platform.Platform{Routers: n + 1}
	p.Clusters = append(p.Clusters, platform.Cluster{Name: "src", Speed: srcSpeed, Gateway: 1000, Router: 0})
	for i := 1; i <= n; i++ {
		p.Clusters = append(p.Clusters, platform.Cluster{Name: "w", Speed: 100, Gateway: 1000, Router: i})
		p.Links = append(p.Links, platform.Link{U: 0, V: i, BW: bw, MaxConnect: maxcon})
	}
	if err := p.ComputeRoutes(); err != nil {
		panic(err)
	}
	return p
}

func randomProblem(seed int64, maxK int) *core.Problem {
	rng := rand.New(rand.NewSource(seed))
	params := platgen.Params{
		K:             2 + rng.Intn(maxK-1),
		Connectivity:  0.2 + 0.6*rng.Float64(),
		Heterogeneity: 0.2 + 0.6*rng.Float64(),
		MeanG:         50 + 400*rng.Float64(),
		MeanBW:        10 + 80*rng.Float64(),
		MeanMaxCon:    2 + 20*rng.Float64(),
	}
	pl, err := platgen.Generate(params, rng)
	if err != nil {
		panic(err)
	}
	return core.NewProblem(pl)
}

func TestGreedyFullDrainLocalSaturation(t *testing.T) {
	// Single cluster: the full-drain variant allocates all local
	// speed, while the paper-faithful G strands it (its §5.1 local
	// guard is zero when no other cluster exists).
	p := &platform.Platform{Routers: 1, Clusters: []platform.Cluster{{Name: "c", Speed: 100, Gateway: 50, Router: 0}}}
	if err := p.ComputeRoutes(); err != nil {
		t.Fatal(err)
	}
	pr := core.NewProblem(p)
	a := GreedyFullDrain(pr)
	if math.Abs(a.Alpha[0][0]-100) > 1e-9 {
		t.Fatalf("full drain: α_{0,0} = %g, want 100", a.Alpha[0][0])
	}
	if err := pr.CheckAllocation(a, core.DefaultTol); err != nil {
		t.Fatal(err)
	}
	g := Greedy(pr)
	if g.AppThroughput(0) != 0 {
		t.Fatalf("paper G on an isolated cluster = %g, want 0 (stranded)", g.AppThroughput(0))
	}
}

func TestGreedyFullDrainDominatesG(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		pr := randomProblem(seed, 10)
		g := pr.Objective(core.SUM, Greedy(pr))
		gf := pr.Objective(core.SUM, GreedyFullDrain(pr))
		if gf < g-1e-6*(1+g) {
			t.Fatalf("seed %d: G-FULL %g < G %g", seed, gf, g)
		}
	}
}

func TestGreedyFullDrainReachesTrivialSUMOptimum(t *testing.T) {
	// With unit payoffs the SUM relaxation optimum is Σ s_k (all
	// work local); the full-drain variant always attains it.
	for seed := int64(0); seed < 8; seed++ {
		pr := randomProblem(seed, 8)
		ub, _, err := UpperBound(pr, core.SUM)
		if err != nil {
			t.Fatal(err)
		}
		got := pr.Objective(core.SUM, GreedyFullDrain(pr))
		if math.Abs(got-ub) > 1e-6*(1+ub) {
			t.Fatalf("seed %d: G-FULL SUM %g != LP %g", seed, got, ub)
		}
	}
}

func TestGreedyUsesRemoteWorkers(t *testing.T) {
	// Source with zero speed must ship work to the workers.
	pr := core.NewProblem(star(0, 3, 10, 2))
	pr.Payoffs = []float64{1, 0, 0, 0}
	a := Greedy(pr)
	if err := pr.CheckAllocation(a, core.DefaultTol); err != nil {
		t.Fatal(err)
	}
	// 3 workers x 2 connections x bw 10 = 60 achievable.
	if got := a.AppThroughput(0); math.Abs(got-60) > 1e-6 {
		t.Fatalf("throughput = %g, want 60", got)
	}
	for l := 1; l <= 3; l++ {
		if a.Beta[0][l] != 2 {
			t.Fatalf("β_{0,%d} = %d, want 2", l, a.Beta[0][l])
		}
	}
}

func TestGreedyRespectsZeroPayoff(t *testing.T) {
	pr := core.NewProblem(star(100, 2, 10, 2))
	pr.Payoffs = []float64{1, 0, 0}
	a := Greedy(pr)
	if err := pr.CheckAllocation(a, core.DefaultTol); err != nil {
		t.Fatal(err)
	}
	for k := 1; k <= 2; k++ {
		if a.AppThroughput(k) != 0 {
			t.Fatalf("zero-payoff app %d got throughput %g", k, a.AppThroughput(k))
		}
	}
	// App 0 should still get its local speed plus remote capacity.
	if got := a.AppThroughput(0); got < 100 {
		t.Fatalf("app 0 throughput = %g, want >= 100", got)
	}
}

func TestGreedyFairnessUnderContention(t *testing.T) {
	// Two symmetric clusters with equal payoffs: greedy should treat
	// them symmetrically (equal throughput).
	p := &platform.Platform{
		Routers: 2,
		Links:   []platform.Link{{U: 0, V: 1, BW: 10, MaxConnect: 3}},
		Clusters: []platform.Cluster{
			{Name: "a", Speed: 100, Gateway: 50, Router: 0},
			{Name: "b", Speed: 100, Gateway: 50, Router: 1},
		},
	}
	if err := p.ComputeRoutes(); err != nil {
		t.Fatal(err)
	}
	pr := core.NewProblem(p)
	a := Greedy(pr)
	if err := pr.CheckAllocation(a, core.DefaultTol); err != nil {
		t.Fatal(err)
	}
	t0, t1 := a.AppThroughput(0), a.AppThroughput(1)
	if math.Abs(t0-t1) > 1e-6 {
		t.Fatalf("asymmetric throughputs %g vs %g", t0, t1)
	}
}

func TestLPRNeverExceedsRelaxation(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		pr := randomProblem(seed, 8)
		for _, obj := range []core.Objective{core.SUM, core.MAXMIN} {
			ub, _, err := UpperBound(pr, obj)
			if err != nil {
				t.Fatal(err)
			}
			a, err := LPR(pr, obj)
			if err != nil {
				t.Fatal(err)
			}
			if err := pr.CheckAllocation(a, core.DefaultTol); err != nil {
				t.Fatalf("seed %d %v: %v", seed, obj, err)
			}
			if v := pr.Objective(obj, a); v > ub*(1+1e-6)+1e-6 {
				t.Fatalf("seed %d %v: LPR %g beats upper bound %g", seed, obj, v, ub)
			}
		}
	}
}

func TestLPRGDominatesLPR(t *testing.T) {
	// LPRG = LPR + greedy refinement, so its objective can only be
	// at least LPR's.
	for seed := int64(0); seed < 12; seed++ {
		pr := randomProblem(seed, 9)
		for _, obj := range []core.Objective{core.SUM, core.MAXMIN} {
			lpr, err := LPR(pr, obj)
			if err != nil {
				t.Fatal(err)
			}
			lprg, err := LPRG(pr, obj)
			if err != nil {
				t.Fatal(err)
			}
			if err := pr.CheckAllocation(lprg, core.DefaultTol); err != nil {
				t.Fatalf("seed %d %v: %v", seed, obj, err)
			}
			vr, vg := pr.Objective(obj, lpr), pr.Objective(obj, lprg)
			if vg < vr-1e-6*(1+math.Abs(vr)) {
				t.Fatalf("seed %d %v: LPRG %g < LPR %g", seed, obj, vg, vr)
			}
		}
	}
}

func TestLPRRProducesValidAllocations(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for seed := int64(0); seed < 6; seed++ {
		pr := randomProblem(seed, 6)
		for _, obj := range []core.Objective{core.SUM, core.MAXMIN} {
			for _, variant := range []LPRRVariant{ProportionalRounding, EqualRounding} {
				a, err := LPRR(pr, obj, variant, rng)
				if err != nil {
					t.Fatalf("seed %d %v %v: %v", seed, obj, variant, err)
				}
				if err := pr.CheckAllocation(a, core.DefaultTol); err != nil {
					t.Fatalf("seed %d %v %v: %v", seed, obj, variant, err)
				}
				ub, _, err := UpperBound(pr, obj)
				if err != nil {
					t.Fatal(err)
				}
				if v := pr.Objective(obj, a); v > ub*(1+1e-6)+1e-6 {
					t.Fatalf("seed %d: LPRR %g beats upper bound %g", seed, v, ub)
				}
			}
		}
	}
}

func TestLPRRExactWhenRelaxationIntegral(t *testing.T) {
	// Star with integral optimum: β̃ values are integral, so LPRR
	// must recover exactly the relaxation's objective.
	pr := core.NewProblem(star(0, 2, 10, 2))
	pr.Payoffs = []float64{1, 0, 0}
	rng := rand.New(rand.NewSource(1))
	a, err := LPRR(pr, core.SUM, ProportionalRounding, rng)
	if err != nil {
		t.Fatal(err)
	}
	if got := pr.Objective(core.SUM, a); math.Abs(got-40) > 1e-5 {
		t.Fatalf("LPRR objective = %g, want 40 (2 workers x 2 conns x bw 10)", got)
	}
}

func TestLPRRVariantString(t *testing.T) {
	if ProportionalRounding.String() != "LPRR" || EqualRounding.String() != "LPRR-EQ" {
		t.Fatal("variant strings wrong")
	}
}

func TestBranchAndBoundMatchesRelaxationWhenIntegral(t *testing.T) {
	pr := core.NewProblem(star(0, 2, 10, 2))
	pr.Payoffs = []float64{1, 0, 0}
	alloc, val, err := BranchAndBound(pr, core.SUM, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(val-40) > 1e-5 {
		t.Fatalf("BnB value = %g, want 40", val)
	}
	if err := pr.CheckAllocation(alloc, core.DefaultTol); err != nil {
		t.Fatal(err)
	}
}

func TestBranchAndBoundBeatsOrMatchesHeuristics(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for seed := int64(0); seed < 6; seed++ {
		pr := randomProblem(seed, 5)
		for _, obj := range []core.Objective{core.SUM, core.MAXMIN} {
			_, exact, err := BranchAndBound(pr, obj, 20000)
			if err != nil {
				t.Fatalf("seed %d %v: %v", seed, obj, err)
			}
			ub, _, err := UpperBound(pr, obj)
			if err != nil {
				t.Fatal(err)
			}
			if exact > ub*(1+1e-6)+1e-6 {
				t.Fatalf("seed %d %v: exact %g beats LP bound %g", seed, obj, exact, ub)
			}
			for _, name := range []Name{NameG, NameLPR, NameLPRG} {
				r, err := Run(name, pr, obj, rng)
				if err != nil {
					t.Fatal(err)
				}
				if r.Value > exact*(1+1e-5)+1e-5 {
					t.Fatalf("seed %d %v: %s=%g beats exact optimum %g", seed, obj, name, r.Value, exact)
				}
			}
		}
	}
}

func TestRunDispatch(t *testing.T) {
	pr := randomProblem(3, 5)
	rng := rand.New(rand.NewSource(2))
	for _, name := range All {
		r, err := Run(name, pr, core.SUM, rng)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if r.Heuristic != name || r.Alloc == nil {
			t.Fatalf("%s: bad result %+v", name, r)
		}
		if err := pr.CheckAllocation(r.Alloc, core.DefaultTol); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if math.Abs(r.Value-pr.Objective(core.SUM, r.Alloc)) > 1e-12 {
			t.Fatalf("%s: Value field inconsistent", name)
		}
	}
	if _, err := Run("nope", pr, core.SUM, rng); err == nil {
		t.Fatal("unknown heuristic must error")
	}
	if _, err := Run(NameLPRR, pr, core.SUM, nil); err == nil {
		t.Fatal("LPRR without rng must error")
	}
}

func TestRunDeterministicHeuristicsStable(t *testing.T) {
	pr := randomProblem(11, 7)
	a1, err := Run(NameG, pr, core.SUM, nil)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := Run(NameG, pr, core.SUM, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a1.Value != a2.Value {
		t.Fatalf("greedy not deterministic: %g vs %g", a1.Value, a2.Value)
	}
}

// TestPropertyAllHeuristicsValidAndBounded is the paper's implicit
// contract: every heuristic returns a valid allocation (Eq. 7) whose
// objective does not exceed the LP upper bound.
func TestPropertyAllHeuristicsValidAndBounded(t *testing.T) {
	prop := func(seed int64) bool {
		pr := randomProblem(seed, 7)
		rng := rand.New(rand.NewSource(seed + 1))
		for _, obj := range []core.Objective{core.SUM, core.MAXMIN} {
			ub, _, err := UpperBound(pr, obj)
			if err != nil {
				return false
			}
			for _, name := range []Name{NameG, NameLPR, NameLPRG, NameLPRR} {
				r, err := Run(name, pr, obj, rng)
				if err != nil {
					return false
				}
				if err := pr.CheckAllocation(r.Alloc, core.DefaultTol); err != nil {
					t.Logf("seed %d %s %v: %v", seed, name, obj, err)
					return false
				}
				if r.Value > ub*(1+1e-5)+1e-5 {
					t.Logf("seed %d %s %v: value %g > bound %g", seed, name, obj, r.Value, ub)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkGreedyK20(b *testing.B) {
	pr := randomProblem(5, 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Greedy(pr)
	}
}

func BenchmarkLPRGK10(b *testing.B) {
	pr := randomProblem(5, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := LPRG(pr, core.SUM); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLPRRK6(b *testing.B) {
	pr := randomProblem(5, 6)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := LPRR(pr, core.SUM, ProportionalRounding, rng); err != nil {
			b.Fatal(err)
		}
	}
}
