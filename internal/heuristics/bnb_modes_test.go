package heuristics

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/platgen"
)

// TestBranchAndBoundModesAgree is the end-to-end acceptance check of
// the solver swap: on randomized network-bound platforms, the
// warm-started revised-simplex tree and the cold dense-tableau tree
// must prove identical optima (Δobj ≤ 1e-9 relative).
func TestBranchAndBoundModesAgree(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		rng := rand.New(rand.NewSource(seed))
		params := platgen.Params{
			K:             4 + int(seed%3),
			Connectivity:  0.6,
			Heterogeneity: 0.6,
			MeanG:         450,
			MeanBW:        10,
			MeanMaxCon:    5,
		}
		pl, err := platgen.Generate(params, rng)
		if err != nil {
			t.Fatal(err)
		}
		pr := core.NewProblem(pl)
		for i := range pr.Payoffs {
			pr.Payoffs[i] = float64(1 + rng.Intn(3))
		}
		for _, obj := range []core.Objective{core.SUM, core.MAXMIN} {
			_, warm, err := BranchAndBoundMode(pr, obj, 4000, BnBWarm)
			if err != nil && err != ErrNodeBudget {
				t.Fatalf("seed %d %v: warm: %v", seed, obj, err)
			}
			warmBudget := err == ErrNodeBudget
			_, cold, err := BranchAndBoundMode(pr, obj, 4000, BnBColdDense)
			if err != nil && err != ErrNodeBudget {
				t.Fatalf("seed %d %v: cold: %v", seed, obj, err)
			}
			coldBudget := err == ErrNodeBudget
			if warmBudget || coldBudget {
				continue // incumbents are only lower bounds; skip comparison
			}
			if math.Abs(warm-cold) > 1e-9*(1+math.Abs(cold)) {
				t.Fatalf("seed %d %v: warm optimum %.12g, cold optimum %.12g", seed, obj, warm, cold)
			}
		}
	}
}
