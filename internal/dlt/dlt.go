// Package dlt implements the classical divisible load theory results
// the paper's platform model is built on (§2): a cluster is a
// star-shaped (or tree-shaped) network behind its front-end, and "it
// is known that C^k_master and the leaf processors are together
// equivalent to a single processor whose speed s_k can be determined
// by classical formulas from divisible load theory" (refs [30, 6, 4]
// of the paper). This package provides those formulas:
//
//   - the one-round star distribution with a one-port master
//     (Bharadwaj et al.): closed-form load fractions under the
//     all-finish-together principle and the bandwidth-ordering
//     optimality result;
//   - the steady-state star and tree throughput (Banino et al.,
//     ref [4]): the equivalent speed used by this paper's
//     steady-state model, computed by the fractional-knapsack
//     closed form;
//   - recursive tree collapsing, which reduces any tree-of-clusters
//     institution to the single (speed, gateway) pair the platform
//     model needs.
package dlt

import (
	"fmt"
	"math"
	"sort"
)

// Worker is one slave processor of a star network: it computes Speed
// load units per time unit and its private link from the master
// carries LinkBW load units per time unit.
type Worker struct {
	Speed  float64
	LinkBW float64
}

// Star is a single-level master/worker platform. The master holds the
// load, computes at MasterSpeed (0 for a pure source), and serves its
// workers through a one-port serial interface: it communicates with
// one worker at a time.
type Star struct {
	MasterSpeed float64
	Workers     []Worker
}

// Validate checks parameter sanity.
func (s *Star) Validate() error {
	if s.MasterSpeed < 0 || math.IsNaN(s.MasterSpeed) {
		return fmt.Errorf("dlt: master speed %g invalid", s.MasterSpeed)
	}
	for i, w := range s.Workers {
		if w.Speed < 0 || math.IsNaN(w.Speed) {
			return fmt.Errorf("dlt: worker %d speed %g invalid", i, w.Speed)
		}
		if w.LinkBW <= 0 || math.IsNaN(w.LinkBW) {
			return fmt.Errorf("dlt: worker %d link bandwidth %g invalid", i, w.LinkBW)
		}
	}
	return nil
}

// OneRound is the outcome of a single-round distribution: the load
// fractions (master first, then workers in the served order) and the
// makespan, normalized to total load W.
type OneRound struct {
	MasterShare  float64
	WorkerShares []float64 // in the order the workers were served
	Order        []int     // served worker indices
	Makespan     float64
}

// OneRoundFixedOrder computes the optimal single-round distribution
// of load W when the workers are served in the given order (a
// permutation of worker indices): by the classical all-finish-
// together principle, every participating worker and the master
// finish computing at the same instant T, which yields a linear
// recursion for the shares.
//
// Worker i served after a communication prefix P finishes at
// P + a_i/b_i + a_i/s_i = T, with prefixes accumulating a_j/b_j. The
// master computes MasterSpeed·T concurrently. Workers whose
// parameters force a negative share are given zero load (they do not
// participate).
func (s *Star) OneRoundFixedOrder(w float64, order []int) (*OneRound, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if w < 0 {
		return nil, fmt.Errorf("dlt: negative load %g", w)
	}
	if len(order) != len(s.Workers) {
		return nil, fmt.Errorf("dlt: order has %d entries for %d workers", len(order), len(s.Workers))
	}
	seen := make([]bool, len(s.Workers))
	for _, i := range order {
		if i < 0 || i >= len(s.Workers) || seen[i] {
			return nil, fmt.Errorf("dlt: order is not a permutation")
		}
		seen[i] = true
	}
	// Shares are linear in T: a_i = c_i·(T − P_{i-1}), with
	// c_i = s_i/(1+s_i/b_i) = s_i·b_i/(s_i+b_i), and prefixes
	// P_i = P_{i-1} + a_i/b_i. Expand everything as λ + μ·T.
	type lin struct{ l, m float64 }
	prefix := lin{0, 0}
	shares := make([]lin, len(order))
	for idx, wi := range order {
		wk := s.Workers[wi]
		if wk.Speed == 0 {
			shares[idx] = lin{0, 0}
			continue
		}
		c := wk.Speed * wk.LinkBW / (wk.Speed + wk.LinkBW)
		// a = c·(T − prefix) = −c·prefix.l + (c − c·prefix.m)·T
		a := lin{-c * prefix.l, c * (1 - prefix.m)}
		shares[idx] = a
		prefix.l += a.l / wk.LinkBW
		prefix.m += a.m / wk.LinkBW
	}
	// Total: masterSpeed·T + Σ a_i = W → solve for T.
	suml, summ := 0.0, s.MasterSpeed
	for _, a := range shares {
		suml += a.l
		summ += a.m
	}
	if summ <= 0 {
		return nil, fmt.Errorf("dlt: star has no compute capacity")
	}
	t := (w - suml) / summ
	out := &OneRound{
		MasterShare:  s.MasterSpeed * t,
		WorkerShares: make([]float64, len(order)),
		Order:        append([]int(nil), order...),
		Makespan:     t,
	}
	for idx, a := range shares {
		v := a.l + a.m*t
		if v < 0 {
			v = 0 // non-participating worker under this order
		}
		out.WorkerShares[idx] = v
	}
	return out, nil
}

// OneRound computes the single-round distribution with the classical
// optimal ordering: workers served by non-increasing link bandwidth
// (ties broken by speed then index, deterministically).
func (s *Star) OneRound(w float64) (*OneRound, error) {
	order := make([]int, len(s.Workers))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		wa, wb := s.Workers[order[a]], s.Workers[order[b]]
		if wa.LinkBW != wb.LinkBW {
			return wa.LinkBW > wb.LinkBW
		}
		return wa.Speed > wb.Speed
	})
	return s.OneRoundFixedOrder(w, order)
}

// SteadyStateThroughput returns the maximum load per time unit the
// star can absorb in steady state under the one-port model — the
// equivalent speed s_k of the paper's §2 (ref [4]). The program is
//
//	maximize α_0 + Σ α_i
//	s.t. α_0 ≤ MasterSpeed, α_i ≤ s_i, Σ α_i/b_i ≤ 1,
//
// a fractional knapsack whose optimum serves workers by decreasing
// link bandwidth: a unit of one-port time spent on worker i yields
// b_i load, so fast links are saturated first (up to each worker's
// speed).
func (s *Star) SteadyStateThroughput() (float64, error) {
	if err := s.Validate(); err != nil {
		return 0, err
	}
	order := make([]int, len(s.Workers))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return s.Workers[order[a]].LinkBW > s.Workers[order[b]].LinkBW
	})
	total := s.MasterSpeed
	port := 1.0 // one-port time budget per time unit
	for _, i := range order {
		if port <= 0 {
			break
		}
		w := s.Workers[i]
		// Serving worker i at full speed costs s_i/b_i port time.
		need := w.Speed / w.LinkBW
		if need <= port {
			total += w.Speed
			port -= need
		} else {
			total += port * w.LinkBW
			port = 0
		}
	}
	return total, nil
}

// Tree is a tree-of-clusters institution: a node computes at Speed
// and serves each child subtree through a dedicated link, all behind
// the node's one-port interface.
type Tree struct {
	Speed    float64
	Children []TreeEdge
}

// TreeEdge connects a node to a child subtree through a link of
// bandwidth BW.
type TreeEdge struct {
	BW    float64
	Child *Tree
}

// EquivalentSpeed collapses the tree bottom-up into the single
// equivalent processor speed of the paper's §2: every child subtree
// is first reduced to its own steady-state throughput, then the node
// is treated as a star over those equivalent workers (ref [6, 5, 7]:
// "a tree topology is equivalent to a single processor").
func (t *Tree) EquivalentSpeed() (float64, error) {
	star := Star{MasterSpeed: t.Speed}
	for i, e := range t.Children {
		if e.Child == nil {
			return 0, fmt.Errorf("dlt: tree edge %d has nil child", i)
		}
		child, err := e.Child.EquivalentSpeed()
		if err != nil {
			return 0, err
		}
		star.Workers = append(star.Workers, Worker{Speed: child, LinkBW: e.BW})
	}
	return star.SteadyStateThroughput()
}
