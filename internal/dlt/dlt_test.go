package dlt

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/lp"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestValidate(t *testing.T) {
	good := &Star{MasterSpeed: 1, Workers: []Worker{{Speed: 1, LinkBW: 1}}}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []*Star{
		{MasterSpeed: -1},
		{Workers: []Worker{{Speed: -1, LinkBW: 1}}},
		{Workers: []Worker{{Speed: 1, LinkBW: 0}}},
		{MasterSpeed: math.NaN()},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Fatalf("case %d must fail", i)
		}
	}
}

func TestOneRoundSingleWorker(t *testing.T) {
	// Master speed 0, one worker speed 2, link 2: chunk a with
	// a/2 + a/2 = T and a = W → T = W.
	s := &Star{Workers: []Worker{{Speed: 2, LinkBW: 2}}}
	r, err := s.OneRound(10)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(r.Makespan, 10, 1e-12) || !approx(r.WorkerShares[0], 10, 1e-12) {
		t.Fatalf("got %+v", r)
	}
}

func TestOneRoundAllFinishTogether(t *testing.T) {
	// The invariant behind the closed form: every participating
	// worker's receive-then-compute completion equals the makespan.
	s := &Star{
		MasterSpeed: 3,
		Workers: []Worker{
			{Speed: 5, LinkBW: 9},
			{Speed: 2, LinkBW: 4},
			{Speed: 7, LinkBW: 2},
		},
	}
	const w = 100.0
	r, err := s.OneRound(w)
	if err != nil {
		t.Fatal(err)
	}
	total := r.MasterShare
	prefix := 0.0
	for idx, wi := range r.Order {
		wk := s.Workers[wi]
		a := r.WorkerShares[idx]
		total += a
		prefix += a / wk.LinkBW
		if a <= 0 {
			continue
		}
		finish := prefix + a/wk.Speed
		if !approx(finish, r.Makespan, 1e-9*r.Makespan) {
			t.Fatalf("worker %d finishes at %g, makespan %g", wi, finish, r.Makespan)
		}
	}
	if !approx(total, w, 1e-9*w) {
		t.Fatalf("shares sum to %g, want %g", total, w)
	}
	if !approx(r.MasterShare, 3*r.Makespan, 1e-12) {
		t.Fatalf("master share %g, want speed*T = %g", r.MasterShare, 3*r.Makespan)
	}
}

func TestOneRoundHomogeneousGeometricShares(t *testing.T) {
	// Classic bus-network result: with identical workers
	// (speed s, link b) the shares decrease geometrically with ratio
	// q = b/(s+b).
	s := &Star{Workers: []Worker{
		{Speed: 4, LinkBW: 6}, {Speed: 4, LinkBW: 6}, {Speed: 4, LinkBW: 6},
	}}
	r, err := s.OneRound(1)
	if err != nil {
		t.Fatal(err)
	}
	q := 6.0 / (4 + 6)
	for i := 1; i < 3; i++ {
		got := r.WorkerShares[i] / r.WorkerShares[i-1]
		if !approx(got, q, 1e-9) {
			t.Fatalf("share ratio %d = %g, want %g", i, got, q)
		}
	}
}

func TestOneRoundOrderOptimality(t *testing.T) {
	// The bandwidth-descending order must (weakly) beat every other
	// permutation — the classical ordering theorem, brute-forced.
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		s := &Star{MasterSpeed: rng.Float64() * 3}
		n := 2 + rng.Intn(3)
		for i := 0; i < n; i++ {
			s.Workers = append(s.Workers, Worker{
				Speed:  0.5 + 5*rng.Float64(),
				LinkBW: 0.5 + 5*rng.Float64(),
			})
		}
		best, err := s.OneRound(1)
		if err != nil {
			t.Fatal(err)
		}
		perms := permutations(n)
		for _, p := range perms {
			r, err := s.OneRoundFixedOrder(1, p)
			if err != nil {
				t.Fatal(err)
			}
			if r.Makespan < best.Makespan*(1-1e-9) {
				t.Fatalf("trial %d: order %v (T=%g) beats bandwidth order %v (T=%g)",
					trial, p, r.Makespan, best.Order, best.Makespan)
			}
		}
	}
}

func permutations(n int) [][]int {
	var out [][]int
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	var rec func(k int)
	rec = func(k int) {
		if k == n {
			out = append(out, append([]int(nil), perm...))
			return
		}
		for i := k; i < n; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			rec(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	rec(0)
	return out
}

func TestOneRoundErrors(t *testing.T) {
	s := &Star{Workers: []Worker{{Speed: 1, LinkBW: 1}}}
	if _, err := s.OneRoundFixedOrder(-1, []int{0}); err == nil {
		t.Fatal("negative load must fail")
	}
	if _, err := s.OneRoundFixedOrder(1, []int{0, 0}); err == nil {
		t.Fatal("non-permutation must fail")
	}
	if _, err := s.OneRoundFixedOrder(1, nil); err == nil {
		t.Fatal("wrong-length order must fail")
	}
	empty := &Star{}
	if _, err := empty.OneRound(1); err == nil {
		t.Fatal("zero-capacity star must fail")
	}
}

func TestSteadyStateClosedForm(t *testing.T) {
	// Master 10; workers (speed, bw): (5, 10) costs 0.5 port-time,
	// (8, 4) costs 2 port-times but only 0.5 remains → 0.5·4 = 2.
	// Total: 10 + 5 + 2 = 17.
	s := &Star{
		MasterSpeed: 10,
		Workers:     []Worker{{Speed: 5, LinkBW: 10}, {Speed: 8, LinkBW: 4}},
	}
	got, err := s.SteadyStateThroughput()
	if err != nil {
		t.Fatal(err)
	}
	if !approx(got, 17, 1e-12) {
		t.Fatalf("throughput = %g, want 17", got)
	}
}

// TestSteadyStateMatchesLP cross-checks the fractional-knapsack
// closed form against the LP
//
//	max α_0 + Σ α_i  s.t.  α_0 ≤ s_0, α_i ≤ s_i, Σ α_i/b_i ≤ 1
//
// solved with the simplex of internal/lp, on random stars.
func TestSteadyStateMatchesLP(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := &Star{MasterSpeed: rng.Float64() * 10}
		n := 1 + rng.Intn(8)
		for i := 0; i < n; i++ {
			s.Workers = append(s.Workers, Worker{
				Speed:  0.1 + 10*rng.Float64(),
				LinkBW: 0.1 + 10*rng.Float64(),
			})
		}
		closed, err := s.SteadyStateThroughput()
		if err != nil {
			return false
		}
		p := lp.New(n + 1)
		p.SetObjective(0, 1)
		p.AddConstraint([]lp.Term{{Var: 0, Coeff: 1}}, lp.LE, s.MasterSpeed)
		var port []lp.Term
		for i, w := range s.Workers {
			p.SetObjective(i+1, 1)
			p.AddConstraint([]lp.Term{{Var: i + 1, Coeff: 1}}, lp.LE, w.Speed)
			port = append(port, lp.Term{Var: i + 1, Coeff: 1 / w.LinkBW})
		}
		p.AddConstraint(port, lp.LE, 1)
		sol, err := p.Solve()
		if err != nil || sol.Status != lp.Optimal {
			return false
		}
		return approx(closed, sol.Objective, 1e-6*(1+sol.Objective))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTreeEquivalentSpeed(t *testing.T) {
	// Leaf-only "tree" is just its own speed.
	leaf := &Tree{Speed: 7}
	got, err := leaf.EquivalentSpeed()
	if err != nil || got != 7 {
		t.Fatalf("leaf = %g err=%v", got, err)
	}
	// Two-level tree: root speed 10 with one child (speed 5 via bw
	// 10, port cost 0.5) and one grandchild chain: child2 has its own
	// child. Collapse is recursive.
	grand := &Tree{Speed: 6}
	child2 := &Tree{Speed: 2, Children: []TreeEdge{{BW: 3, Child: grand}}}
	// child2 equivalent: 2 + min(6, port 1 × bw 3 limited by 6/3=2
	// port... need = 6/3 = 2 > 1 → 1·3 = 3; total 2+3 = 5.
	c2, err := child2.EquivalentSpeed()
	if err != nil || !approx(c2, 5, 1e-12) {
		t.Fatalf("child2 = %g err=%v", c2, err)
	}
	root := &Tree{Speed: 10, Children: []TreeEdge{
		{BW: 10, Child: &Tree{Speed: 5}},
		{BW: 4, Child: child2},
	}}
	// Root: 10 + serve (5 via 10): cost 0.5 → +5; serve (5 via 4):
	// cost 1.25 > 0.5 remaining → 0.5·4 = 2. Total 17.
	got, err = root.EquivalentSpeed()
	if err != nil || !approx(got, 17, 1e-12) {
		t.Fatalf("root = %g err=%v", got, err)
	}
}

func TestTreeNilChild(t *testing.T) {
	bad := &Tree{Speed: 1, Children: []TreeEdge{{BW: 1, Child: nil}}}
	if _, err := bad.EquivalentSpeed(); err == nil {
		t.Fatal("nil child must fail")
	}
}

// TestPropertyTreeMonotonicity: adding a child never decreases the
// equivalent speed, and the equivalent speed never exceeds the sum of
// all node speeds.
func TestPropertyTreeMonotonicity(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		root := &Tree{Speed: rng.Float64() * 10}
		sum := root.Speed
		for i := 0; i < 1+rng.Intn(5); i++ {
			child := &Tree{Speed: rng.Float64() * 10}
			sum += child.Speed
			before, err := root.EquivalentSpeed()
			if err != nil {
				return false
			}
			root.Children = append(root.Children, TreeEdge{BW: 0.1 + 5*rng.Float64(), Child: child})
			after, err := root.EquivalentSpeed()
			if err != nil {
				return false
			}
			if after < before-1e-9 {
				return false
			}
		}
		eq, err := root.EquivalentSpeed()
		if err != nil {
			return false
		}
		return eq <= sum+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkOneRound32Workers(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	s := &Star{MasterSpeed: 10}
	for i := 0; i < 32; i++ {
		s.Workers = append(s.Workers, Worker{Speed: 1 + rng.Float64()*9, LinkBW: 1 + rng.Float64()*9})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.OneRound(100); err != nil {
			b.Fatal(err)
		}
	}
}
