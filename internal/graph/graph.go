// Package graph provides a small undirected multigraph with weighted
// edges and the shortest-path routing primitives needed to build the
// fixed inter-cluster routing tables of the platform model
// (paper §2: the ordered list L_{k,l} of backbone links between two
// cluster routers).
package graph

import (
	"container/heap"
	"fmt"
	"math"
)

// Graph is an undirected multigraph over nodes 0..N-1. Edges carry an
// integer identifier (their index in Edges) so that parallel edges and
// edge-indexed attributes (bandwidth, connection budgets) are
// supported.
type Graph struct {
	n     int
	Edges []Edge
	adj   [][]halfEdge // adjacency: for each node, incident half-edges
}

// Edge is an undirected edge between U and V with a traversal Weight
// (used as the routing metric; typically 1 for hop-count routing).
type Edge struct {
	U, V   int
	Weight float64
}

type halfEdge struct {
	to   int // neighbour node
	edge int // index into Edges
}

// New creates a graph with n nodes and no edges.
func New(n int) *Graph {
	if n < 0 {
		panic(fmt.Sprintf("graph: negative node count %d", n))
	}
	return &Graph{n: n, adj: make([][]halfEdge, n)}
}

// N returns the number of nodes.
func (g *Graph) N() int { return g.n }

// M returns the number of edges.
func (g *Graph) M() int { return len(g.Edges) }

// AddNode appends a new node and returns its index.
func (g *Graph) AddNode() int {
	g.adj = append(g.adj, nil)
	g.n++
	return g.n - 1
}

// AddEdge inserts an undirected edge {u,v} with the given weight and
// returns its edge index. Parallel edges and self-loops are allowed
// (self-loops are never part of a shortest path between distinct
// nodes).
func (g *Graph) AddEdge(u, v int, weight float64) int {
	g.checkNode(u)
	g.checkNode(v)
	if weight < 0 {
		panic(fmt.Sprintf("graph: negative edge weight %g", weight))
	}
	id := len(g.Edges)
	g.Edges = append(g.Edges, Edge{U: u, V: v, Weight: weight})
	g.adj[u] = append(g.adj[u], halfEdge{to: v, edge: id})
	if u != v {
		g.adj[v] = append(g.adj[v], halfEdge{to: u, edge: id})
	}
	return id
}

// Degree returns the number of incident half-edges of node u
// (self-loops count once).
func (g *Graph) Degree(u int) int {
	g.checkNode(u)
	return len(g.adj[u])
}

// Neighbors returns the neighbour node of each incident edge of u, in
// insertion order. The same neighbour appears once per parallel edge.
func (g *Graph) Neighbors(u int) []int {
	g.checkNode(u)
	out := make([]int, len(g.adj[u]))
	for i, h := range g.adj[u] {
		out[i] = h.to
	}
	return out
}

func (g *Graph) checkNode(u int) {
	if u < 0 || u >= g.n {
		panic(fmt.Sprintf("graph: node %d out of range [0,%d)", u, g.n))
	}
}

// Path is a route through the graph: the ordered edge indices
// traversed from the source to the destination.
type Path struct {
	Nodes []int // visited nodes, source first, destination last
	Edges []int // edge indices, len(Edges) == len(Nodes)-1
	Cost  float64
}

// ShortestPaths computes shortest paths from src to every node using
// Dijkstra's algorithm on edge weights. It returns, for each node, the
// total distance (math.Inf(1) if unreachable) and the predecessor
// half-edge used to reach it (-1 edge index when unreached or src).
func (g *Graph) ShortestPaths(src int) (dist []float64, prevEdge []int, prevNode []int) {
	g.checkNode(src)
	dist = make([]float64, g.n)
	prevEdge = make([]int, g.n)
	prevNode = make([]int, g.n)
	for i := range dist {
		dist[i] = math.Inf(1)
		prevEdge[i] = -1
		prevNode[i] = -1
	}
	dist[src] = 0
	pq := &nodeHeap{{node: src, dist: 0}}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(nodeItem)
		if it.dist > dist[it.node] {
			continue // stale entry
		}
		for _, h := range g.adj[it.node] {
			nd := it.dist + g.Edges[h.edge].Weight
			if nd < dist[h.to] {
				dist[h.to] = nd
				prevEdge[h.to] = h.edge
				prevNode[h.to] = it.node
				heap.Push(pq, nodeItem{node: h.to, dist: nd})
			}
		}
	}
	return dist, prevEdge, prevNode
}

// ShortestPath returns the shortest path from src to dst, or ok=false
// if dst is unreachable. A path from a node to itself is the empty
// path with cost 0.
func (g *Graph) ShortestPath(src, dst int) (Path, bool) {
	g.checkNode(dst)
	dist, prevEdge, prevNode := g.ShortestPaths(src)
	if math.IsInf(dist[dst], 1) {
		return Path{}, false
	}
	var nodes, edges []int
	for at := dst; at != src; at = prevNode[at] {
		nodes = append(nodes, at)
		edges = append(edges, prevEdge[at])
	}
	nodes = append(nodes, src)
	reverseInts(nodes)
	reverseInts(edges)
	return Path{Nodes: nodes, Edges: edges, Cost: dist[dst]}, true
}

// Components labels each node with a connected-component id in
// [0,numComponents) and returns the labels and the component count.
func (g *Graph) Components() (label []int, count int) {
	label = make([]int, g.n)
	for i := range label {
		label[i] = -1
	}
	var stack []int
	for s := 0; s < g.n; s++ {
		if label[s] != -1 {
			continue
		}
		label[s] = count
		stack = append(stack[:0], s)
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, h := range g.adj[u] {
				if label[h.to] == -1 {
					label[h.to] = count
					stack = append(stack, h.to)
				}
			}
		}
		count++
	}
	return label, count
}

// Connected reports whether u and v are in the same connected
// component.
func (g *Graph) Connected(u, v int) bool {
	g.checkNode(u)
	g.checkNode(v)
	label, _ := g.Components()
	return label[u] == label[v]
}

func reverseInts(s []int) {
	for i, j := 0, len(s)-1; i < j; i, j = i+1, j-1 {
		s[i], s[j] = s[j], s[i]
	}
}

type nodeItem struct {
	node int
	dist float64
}

type nodeHeap []nodeItem

func (h nodeHeap) Len() int            { return len(h) }
func (h nodeHeap) Less(i, j int) bool  { return h[i].dist < h[j].dist }
func (h nodeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x interface{}) { *h = append(*h, x.(nodeItem)) }
func (h *nodeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
