package graph

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEmptyGraph(t *testing.T) {
	g := New(0)
	if g.N() != 0 || g.M() != 0 {
		t.Fatalf("empty graph has N=%d M=%d", g.N(), g.M())
	}
	_, count := g.Components()
	if count != 0 {
		t.Fatalf("empty graph has %d components, want 0", count)
	}
}

func TestAddNodeAndEdge(t *testing.T) {
	g := New(2)
	id := g.AddNode()
	if id != 2 || g.N() != 3 {
		t.Fatalf("AddNode returned %d, N=%d", id, g.N())
	}
	e := g.AddEdge(0, 2, 1.5)
	if e != 0 || g.M() != 1 {
		t.Fatalf("AddEdge returned %d, M=%d", e, g.M())
	}
	if g.Degree(0) != 1 || g.Degree(1) != 0 || g.Degree(2) != 1 {
		t.Fatalf("degrees %d %d %d", g.Degree(0), g.Degree(1), g.Degree(2))
	}
	nb := g.Neighbors(0)
	if len(nb) != 1 || nb[0] != 2 {
		t.Fatalf("neighbors of 0 = %v", nb)
	}
}

func TestParallelEdges(t *testing.T) {
	g := New(2)
	e1 := g.AddEdge(0, 1, 3)
	e2 := g.AddEdge(0, 1, 1)
	if e1 == e2 {
		t.Fatal("parallel edges must get distinct ids")
	}
	p, ok := g.ShortestPath(0, 1)
	if !ok {
		t.Fatal("path must exist")
	}
	if p.Cost != 1 || len(p.Edges) != 1 || p.Edges[0] != e2 {
		t.Fatalf("shortest path should use the cheaper parallel edge: %+v", p)
	}
}

func TestSelfLoopIgnoredInPaths(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 0, 0.1)
	g.AddEdge(0, 1, 2)
	p, ok := g.ShortestPath(0, 1)
	if !ok || p.Cost != 2 || len(p.Edges) != 1 {
		t.Fatalf("path = %+v ok=%v", p, ok)
	}
}

func TestShortestPathTriangle(t *testing.T) {
	// 0-1 cost 1, 1-2 cost 1, 0-2 cost 3: route 0->2 goes through 1.
	g := New(3)
	a := g.AddEdge(0, 1, 1)
	b := g.AddEdge(1, 2, 1)
	g.AddEdge(0, 2, 3)
	p, ok := g.ShortestPath(0, 2)
	if !ok {
		t.Fatal("unreachable")
	}
	if p.Cost != 2 {
		t.Fatalf("cost = %g, want 2", p.Cost)
	}
	if len(p.Edges) != 2 || p.Edges[0] != a || p.Edges[1] != b {
		t.Fatalf("edges = %v, want [%d %d]", p.Edges, a, b)
	}
	wantNodes := []int{0, 1, 2}
	for i, n := range p.Nodes {
		if n != wantNodes[i] {
			t.Fatalf("nodes = %v", p.Nodes)
		}
	}
}

func TestShortestPathToSelf(t *testing.T) {
	g := New(1)
	p, ok := g.ShortestPath(0, 0)
	if !ok || p.Cost != 0 || len(p.Edges) != 0 || len(p.Nodes) != 1 {
		t.Fatalf("self path = %+v ok=%v", p, ok)
	}
}

func TestUnreachable(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(2, 3, 1)
	if _, ok := g.ShortestPath(0, 3); ok {
		t.Fatal("0 and 3 must be unreachable")
	}
	if g.Connected(0, 3) {
		t.Fatal("Connected(0,3) must be false")
	}
	if !g.Connected(0, 1) || !g.Connected(2, 3) {
		t.Fatal("within-component connectivity lost")
	}
	label, count := g.Components()
	if count != 2 {
		t.Fatalf("components = %d, want 2", count)
	}
	if label[0] != label[1] || label[2] != label[3] || label[0] == label[2] {
		t.Fatalf("labels = %v", label)
	}
}

func TestShortestPathsDistances(t *testing.T) {
	// Line graph 0-1-2-3 with unit weights.
	g := New(4)
	for i := 0; i < 3; i++ {
		g.AddEdge(i, i+1, 1)
	}
	dist, _, _ := g.ShortestPaths(0)
	for i, want := range []float64{0, 1, 2, 3} {
		if dist[i] != want {
			t.Fatalf("dist[%d] = %g, want %g", i, dist[i], want)
		}
	}
}

func TestPanicsOnBadInput(t *testing.T) {
	assertPanics := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	assertPanics("negative node count", func() { New(-1) })
	g := New(1)
	assertPanics("edge to missing node", func() { g.AddEdge(0, 1, 1) })
	assertPanics("negative weight", func() { g.AddEdge(0, 0, -1) })
	assertPanics("degree out of range", func() { g.Degree(5) })
}

// randomGraph builds a seeded Erdos-Renyi style graph with unit
// weights.
func randomGraph(rng *rand.Rand, n int, p float64) *Graph {
	g := New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				g.AddEdge(u, v, 1)
			}
		}
	}
	return g
}

// TestPathPropertyValid checks, on random graphs, that every returned
// shortest path is a real path: consecutive, edge ids match node
// pairs, and cost equals the sum of traversed weights.
func TestPathPropertyValid(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(12)
		g := randomGraph(r, n, 0.4)
		src, dst := r.Intn(n), r.Intn(n)
		p, ok := g.ShortestPath(src, dst)
		if !ok {
			return !g.Connected(src, dst)
		}
		if p.Nodes[0] != src || p.Nodes[len(p.Nodes)-1] != dst {
			return false
		}
		sum := 0.0
		for i, e := range p.Edges {
			ed := g.Edges[e]
			a, b := p.Nodes[i], p.Nodes[i+1]
			if !(ed.U == a && ed.V == b) && !(ed.U == b && ed.V == a) {
				return false
			}
			sum += ed.Weight
		}
		return math.Abs(sum-p.Cost) < 1e-12
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rng}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestTriangleInequalityProperty: dist(src,x) <= dist(src,y) + w(y,x)
// for every edge (y,x), i.e. Dijkstra relaxation is complete.
func TestTriangleInequalityProperty(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(10)
		g := randomGraph(r, n, 0.5)
		dist, _, _ := g.ShortestPaths(0)
		for _, e := range g.Edges {
			if dist[e.U]+e.Weight < dist[e.V]-1e-9 {
				return false
			}
			if dist[e.V]+e.Weight < dist[e.U]-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkShortestPath(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	g := randomGraph(rng, 200, 0.1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.ShortestPath(0, 199)
	}
}
