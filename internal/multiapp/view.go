package multiapp

// ModelView is a forked solve context over a multi-application Model,
// mirroring core.ModelView: a shallow copy of the parent whose mutable
// state (LP problem, solver context, link budgets, warm basis slot) is
// private, while the frozen index structures stay shared read-only.
// Capacity mutators and CaptureState/RestoreState are inherited from
// Model and write only to the view; Solve warm-starts from the basis
// the view inherited from its parent. Views of one parent may solve
// concurrently — they share only read-only state.
type ModelView struct {
	Model
}

// ForkView returns a new view of the model in O(rows + nonzeros).
// The receiver must have solved at least once.
func (m *Model) ForkView() (*ModelView, error) {
	frev, err := m.rev.Fork()
	if err != nil {
		return nil, err
	}
	v := &ModelView{Model: *m}
	v.Model.rev = frev
	v.Model.prob = frev.Problem()
	v.Model.budget = append([]float64(nil), m.budget...)
	return v, nil
}
