package multiapp

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/platgen"
)

// TestModelWarmMatchesFreshAfterCapacityChange: mutating a Model's
// capacities and warm re-solving must match a fresh one-shot Relaxed
// on a platform carrying the same capacities — the §1 adaptability
// loop's correctness contract.
func TestModelWarmMatchesFreshAfterCapacityChange(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		rng := rand.New(rand.NewSource(seed))
		params := platgen.Params{
			K:             3 + rng.Intn(4),
			Connectivity:  0.6,
			Heterogeneity: 0.4,
			MeanG:         150,
			MeanBW:        20,
			MeanMaxCon:    5,
		}
		pl, err := platgen.Generate(params, rng)
		if err != nil {
			t.Fatal(err)
		}
		K := pl.K()
		var apps []App
		for a := 0; a < K+2; a++ {
			apps = append(apps, App{Name: "a", Origin: rng.Intn(K), Payoff: float64(1 + rng.Intn(3))})
		}
		pr := &Problem{Platform: pl, Apps: apps}
		obj := []core.Objective{core.SUM, core.MAXMIN}[seed%2]

		m, err := pr.NewModel(obj)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.Solve(); err != nil {
			t.Fatal(err)
		}
		for epoch := 0; epoch < 5; epoch++ {
			// Perturb capacities on a cloned platform and mirror the
			// change into the model.
			mod := pl.Clone()
			for k := 0; k < K; k++ {
				f := 0.4 + 0.6*rng.Float64()
				mod.Clusters[k].Gateway = pl.Clusters[k].Gateway * f
				if err := m.SetGateway(k, mod.Clusters[k].Gateway); err != nil {
					t.Fatal(err)
				}
				fs := 0.5 + 0.5*rng.Float64()
				mod.Clusters[k].Speed = pl.Clusters[k].Speed * fs
				if err := m.SetSpeed(k, mod.Clusters[k].Speed); err != nil {
					t.Fatal(err)
				}
			}
			warm, err := m.Solve()
			if err != nil {
				t.Fatalf("seed %d epoch %d: warm: %v", seed, epoch, err)
			}
			fresh, err := (&Problem{Platform: mod, Apps: apps}).Relaxed(obj)
			if err != nil {
				t.Fatalf("seed %d epoch %d: fresh: %v", seed, epoch, err)
			}
			if math.Abs(warm.Objective-fresh.Objective) > 1e-9*(1+math.Abs(fresh.Objective)) {
				t.Fatalf("seed %d epoch %d: warm %.12g, fresh %.12g", seed, epoch, warm.Objective, fresh.Objective)
			}
		}
	}
}

func TestModelMutatorValidation(t *testing.T) {
	pr := &Problem{Platform: twoClusters(), Apps: []App{{Name: "x", Origin: 0, Payoff: 1}}}
	m, err := pr.NewModel(core.SUM)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SetSpeed(-1, 10); err == nil {
		t.Fatal("negative cluster index must fail")
	}
	if err := m.SetSpeed(0, math.NaN()); err == nil {
		t.Fatal("NaN speed must fail")
	}
	if err := m.SetGateway(5, 10); err == nil {
		t.Fatal("out-of-range gateway must fail")
	}
	if err := m.SetLinkBudget(9, 1); err == nil {
		t.Fatal("out-of-range link must fail")
	}
	if err := m.SetLinkBudget(0, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Solve(); err != nil {
		t.Fatal(err)
	}
}
