package multiapp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/platgen"
)

func twoClusters() *platform.Platform {
	p := &platform.Platform{
		Routers: 2,
		Links:   []platform.Link{{U: 0, V: 1, BW: 10, MaxConnect: 3}},
		Clusters: []platform.Cluster{
			{Name: "a", Speed: 100, Gateway: 50, Router: 0},
			{Name: "b", Speed: 100, Gateway: 50, Router: 1},
		},
	}
	if err := p.ComputeRoutes(); err != nil {
		panic(err)
	}
	return p
}

func TestValidate(t *testing.T) {
	pl := twoClusters()
	good := &Problem{Platform: pl, Apps: []App{{Name: "x", Origin: 0, Payoff: 1}}}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []*Problem{
		{Platform: nil, Apps: []App{{Origin: 0, Payoff: 1}}},
		{Platform: pl},
		{Platform: pl, Apps: []App{{Origin: 9, Payoff: 1}}},
		{Platform: pl, Apps: []App{{Origin: 0, Payoff: -1}}},
	}
	for i, pr := range bad {
		if err := pr.Validate(); err == nil {
			t.Fatalf("case %d must fail", i)
		}
	}
}

func TestSingleAppPerClusterMatchesCore(t *testing.T) {
	// With exactly one app per cluster the multi-app relaxation must
	// agree with the core relaxation.
	rng := rand.New(rand.NewSource(5))
	for seed := int64(0); seed < 8; seed++ {
		params := platgen.Params{
			K:             2 + rng.Intn(6),
			Connectivity:  0.3 + 0.5*rng.Float64(),
			Heterogeneity: 0.4,
			MeanG:         150,
			MeanBW:        40,
			MeanMaxCon:    8,
		}
		pl, err := platgen.Generate(params, rng)
		if err != nil {
			t.Fatal(err)
		}
		cp := core.NewProblem(pl)
		mp := &Problem{Platform: pl}
		for k := 0; k < pl.K(); k++ {
			mp.Apps = append(mp.Apps, App{Origin: k, Payoff: 1})
		}
		for _, obj := range []core.Objective{core.SUM, core.MAXMIN} {
			want, ok, err := cp.Relaxed(obj, nil)
			if err != nil || !ok {
				t.Fatal(err)
			}
			got, err := mp.Relaxed(obj)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got.Objective-want.Objective) > 1e-5*(1+want.Objective) {
				t.Fatalf("seed %d %v: multiapp %g vs core %g", seed, obj, got.Objective, want.Objective)
			}
		}
	}
}

func TestTwoAppsShareOriginGateway(t *testing.T) {
	// Two apps at cluster 0, speed 0 there: both must ship through
	// the single gateway/route; their total is capped by the route
	// (3 conns x bw 10 = 30), shared fairly under MAXMIN.
	pl := twoClusters()
	pl.Clusters[0].Speed = 0
	if err := pl.ComputeRoutes(); err != nil {
		t.Fatal(err)
	}
	pr := &Problem{Platform: pl, Apps: []App{
		{Name: "u", Origin: 0, Payoff: 1},
		{Name: "v", Origin: 0, Payoff: 1},
	}}
	rel, err := pr.Relaxed(core.MAXMIN)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rel.Objective-15) > 1e-5 {
		t.Fatalf("MAXMIN = %g, want 15 (route capacity 30 split two ways)", rel.Objective)
	}
}

func TestObjectiveAndThroughput(t *testing.T) {
	pl := twoClusters()
	pr := &Problem{Platform: pl, Apps: []App{
		{Origin: 0, Payoff: 2},
		{Origin: 0, Payoff: 1},
	}}
	al := &Allocation{
		Alpha: [][]float64{{10, 5}, {20, 0}},
		Beta:  [][]int{{0, 1}, {0, 0}},
	}
	if got := al.AppThroughput(0); got != 15 {
		t.Fatalf("throughput 0 = %g", got)
	}
	if got := pr.Objective(core.SUM, al); got != 2*15+20 {
		t.Fatalf("SUM = %g", got)
	}
	if got := pr.Objective(core.MAXMIN, al); got != 20 {
		t.Fatalf("MAXMIN = %g", got)
	}
}

func TestCheckAllocationViolations(t *testing.T) {
	pl := twoClusters()
	pr := &Problem{Platform: pl, Apps: []App{
		{Origin: 0, Payoff: 1},
		{Origin: 0, Payoff: 1},
	}}
	mk := func() *Allocation {
		return &Allocation{
			Alpha: [][]float64{{0, 0}, {0, 0}},
			Beta:  [][]int{{0, 0}, {0, 0}},
		}
	}
	ok := mk()
	if err := pr.CheckAllocation(ok, 1e-6); err != nil {
		t.Fatal(err)
	}
	t.Run("speed", func(t *testing.T) {
		a := mk()
		a.Alpha[0][0] = 70
		a.Alpha[1][0] = 70
		if err := pr.CheckAllocation(a, 1e-6); err == nil {
			t.Fatal("expected speed violation")
		}
	})
	t.Run("pooled bandwidth", func(t *testing.T) {
		a := mk()
		a.Alpha[0][1] = 8
		a.Alpha[1][1] = 8
		a.Beta[0][1] = 1 // 16 > 1*10
		if err := pr.CheckAllocation(a, 1e-6); err == nil {
			t.Fatal("expected pooled 7e violation")
		}
		a.Beta[0][1] = 2
		if err := pr.CheckAllocation(a, 1e-6); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("connections", func(t *testing.T) {
		a := mk()
		a.Beta[0][1] = 4
		if err := pr.CheckAllocation(a, 1e-6); err == nil {
			t.Fatal("expected 7d violation")
		}
	})
	t.Run("gateway", func(t *testing.T) {
		a := mk()
		a.Alpha[0][1] = 30
		a.Alpha[1][1] = 30
		a.Beta[0][1] = 3 // within route cap 30? 60 > 30 — raise bw via beta not possible; use local+remote mix
		// gateway 0 carries 60 > 50 regardless of 7e; but 7e fails
		// first at 60 > 30. Use a platform with bigger route capacity.
		pl2 := twoClusters()
		pl2.Links[0].BW = 100
		if err := pl2.ComputeRoutes(); err != nil {
			t.Fatal(err)
		}
		pr2 := &Problem{Platform: pl2, Apps: pr.Apps}
		if err := pr2.CheckAllocation(a, 1e-6); err == nil {
			t.Fatal("expected gateway violation")
		}
	})
}

func TestGreedyMultiApp(t *testing.T) {
	// Three apps at cluster 0 (speed 0), workers behind one route:
	// greedy must share the pooled route among them fairly.
	pl := twoClusters()
	pl.Clusters[0].Speed = 0
	if err := pl.ComputeRoutes(); err != nil {
		t.Fatal(err)
	}
	pr := &Problem{Platform: pl, Apps: []App{
		{Name: "u", Origin: 0, Payoff: 1},
		{Name: "v", Origin: 0, Payoff: 1},
		{Name: "w", Origin: 1, Payoff: 1},
	}}
	al, err := pr.Greedy()
	if err != nil {
		t.Fatal(err)
	}
	if err := pr.CheckAllocation(al, 1e-6); err != nil {
		t.Fatal(err)
	}
	// Total shipped load is bounded by the route (30) and the
	// remote speed shared with app w.
	total := al.AppThroughput(0) + al.AppThroughput(1)
	if total > 30+1e-6 {
		t.Fatalf("apps at origin 0 shipped %g > route capacity 30", total)
	}
	if al.AppThroughput(2) <= 0 {
		t.Fatal("app at cluster 1 got nothing despite local speed")
	}
}

// TestPropertyGreedyValidAndBounded: the multi-app greedy always
// produces valid allocations bounded by the relaxation.
func TestPropertyGreedyValidAndBounded(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		params := platgen.Params{
			K:             2 + rng.Intn(5),
			Connectivity:  0.3 + 0.5*rng.Float64(),
			Heterogeneity: 0.4,
			MeanG:         50 + 200*rng.Float64(),
			MeanBW:        10 + 50*rng.Float64(),
			MeanMaxCon:    2 + 10*rng.Float64(),
		}
		pl, err := platgen.Generate(params, rng)
		if err != nil {
			return false
		}
		pr := &Problem{Platform: pl}
		nApps := 1 + rng.Intn(2*pl.K())
		for a := 0; a < nApps; a++ {
			pr.Apps = append(pr.Apps, App{
				Origin: rng.Intn(pl.K()),
				Payoff: 0.5 + rng.Float64(),
			})
		}
		al, err := pr.Greedy()
		if err != nil {
			return false
		}
		if err := pr.CheckAllocation(al, 1e-6); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		rel, err := pr.Relaxed(core.SUM)
		if err != nil {
			return false
		}
		return pr.Objective(core.SUM, al) <= rel.Objective*(1+1e-6)+1e-6
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMultiAppRelaxed(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	params := platgen.Params{K: 10, Connectivity: 0.4, Heterogeneity: 0.4, MeanG: 150, MeanBW: 40, MeanMaxCon: 8}
	pl, err := platgen.Generate(params, rng)
	if err != nil {
		b.Fatal(err)
	}
	pr := &Problem{Platform: pl}
	for a := 0; a < 20; a++ {
		pr.Apps = append(pr.Apps, App{Origin: a % 10, Payoff: 1})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pr.Relaxed(core.MAXMIN); err != nil {
			b.Fatal(err)
		}
	}
}
