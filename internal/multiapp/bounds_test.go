package multiapp

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/platgen"
)

// TestModelLinkBudgetBoundEncoding: links that constrain exactly one
// pooled route variable are folded into native upper bounds at build
// time (no constraint row), and SetLinkBudget on such links must
// still track a fresh one-shot Relaxed on a platform carrying the
// mutated budget — including budgets of zero and budget restoration.
func TestModelLinkBudgetBoundEncoding(t *testing.T) {
	converted := 0
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(900 + seed))
		params := platgen.Params{
			K:             3 + rng.Intn(4),
			Connectivity:  0.6,
			Heterogeneity: 0.4,
			MeanG:         150,
			MeanBW:        20,
			MeanMaxCon:    5,
		}
		pl, err := platgen.Generate(params, rng)
		if err != nil {
			t.Fatal(err)
		}
		K := pl.K()
		var apps []App
		for a := 0; a < K; a++ {
			apps = append(apps, App{Name: "a", Origin: rng.Intn(K), Payoff: float64(1 + rng.Intn(3))})
		}
		pr := &Problem{Platform: pl, Apps: apps}
		obj := []core.Objective{core.SUM, core.MAXMIN}[seed%2]
		m, err := pr.NewModel(obj)
		if err != nil {
			t.Fatal(err)
		}
		rows := 0
		for li := range pl.Links {
			if m.linkVar[li] >= 0 {
				converted++
				if m.linkRow[li] >= 0 {
					t.Fatalf("seed %d: link %d both bound- and row-encoded", seed, li)
				}
			}
			if m.linkRow[li] >= 0 {
				rows++
			}
		}
		if got := m.prob.NumConstraints(); got < rows {
			t.Fatalf("seed %d: %d constraints < %d link rows", seed, got, rows)
		}
		if _, err := m.Solve(); err != nil {
			t.Fatal(err)
		}
		for epoch := 0; epoch < 5; epoch++ {
			mod := pl.Clone()
			for li := range mod.Links {
				if rng.Float64() < 0.5 {
					continue
				}
				mod.Links[li].MaxConnect = rng.Intn(pl.Links[li].MaxConnect + 1)
				if err := m.SetLinkBudget(li, float64(mod.Links[li].MaxConnect)); err != nil {
					t.Fatal(err)
				}
			}
			warm, err := m.Solve()
			if err != nil {
				t.Fatalf("seed %d epoch %d: warm: %v", seed, epoch, err)
			}
			fresh, err := (&Problem{Platform: mod, Apps: apps}).Relaxed(obj)
			if err != nil {
				t.Fatalf("seed %d epoch %d: fresh: %v", seed, epoch, err)
			}
			if math.Abs(warm.Objective-fresh.Objective) > 1e-9*(1+math.Abs(fresh.Objective)) {
				t.Fatalf("seed %d epoch %d: warm %.12g, fresh %.12g", seed, epoch, warm.Objective, fresh.Objective)
			}
			// Restore the nominal budgets so the next epoch perturbs
			// from the same baseline the fresh problem clones.
			for li := range pl.Links {
				if err := m.SetLinkBudget(li, float64(pl.Links[li].MaxConnect)); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	if converted == 0 {
		t.Fatal("no link was ever bound-encoded across all seeds; conversion path untested")
	}
}
