package multiapp

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/lp"
)

// Model is a reusable handle on the multi-application rational
// relaxation. Where Relaxed builds and cold-solves a one-shot
// lp.Problem, a Model is built once and re-solved after incremental
// capacity mutations — the §1 adaptability scenario, where observed
// per-epoch speeds, gateway availabilities and link budgets are
// injected into the next period's solve. Capacity changes are RHS or
// native variable-bound mutations, so every re-solve warm-starts the
// revised simplex from the previous optimal basis.
//
// A link whose merged (7d)+(7e) constraint covers exactly one pooled
// route variable is not a row at all: α_{a,l}/bw ≤ budget collapses
// to the native upper bound α_{a,l} ≤ budget·bw, shrinking the basis
// the same way core.Model's retired β bound rows did. SetLinkBudget
// transparently mutates the bound instead of a row for such links.
type Model struct {
	pr  *Problem
	obj core.Objective

	prob *lp.Problem
	rev  *lp.Revised

	varIdx map[appVar]int

	speedRow   []int // LP row of cluster l's (7b) constraint, -1 if absent
	gatewayRow []int // LP row of cluster k's (7c) constraint, -1 if absent
	linkRow    []int // LP row of link li's merged (7d)+(7e) constraint, -1 if absent or bound-encoded

	linkVar  []int           // variable natively bounded by link li, -1 when row-encoded or absent
	budget   []float64       // current per-link connection budgets
	varBW    map[int]float64 // route bottleneck bandwidth behind each bounded variable
	varLinks map[int][]int   // bound-encoded links constraining each variable

	basis *lp.Basis // last optimal basis, used to warm-start re-solves
}

type appVar struct{ a, l int }

// NewModel validates the problem and builds the α-space relaxation
// once, with every capacity right-hand side mutable in place.
func (pr *Problem) NewModel(obj core.Objective) (*Model, error) {
	if err := pr.Validate(); err != nil {
		return nil, err
	}
	K := pr.Platform.K()
	A := len(pr.Apps)
	pl := pr.Platform

	m := &Model{pr: pr, obj: obj, varIdx: make(map[appVar]int)}
	var vars []appVar
	for a := 0; a < A; a++ {
		origin := pr.Apps[a].Origin
		for l := 0; l < K; l++ {
			if l != origin && !pl.Route(origin, l).Exists {
				continue
			}
			m.varIdx[appVar{a, l}] = len(vars)
			vars = append(vars, appVar{a, l})
		}
	}
	nv := len(vars)
	tVar := -1
	total := nv
	if obj == core.MAXMIN {
		tVar = nv
		total++
	}
	prob := lp.New(total)

	switch obj {
	case core.SUM:
		for i, v := range vars {
			prob.SetObjective(i, pr.Apps[v.a].Payoff)
		}
	case core.MAXMIN:
		prob.SetObjective(tVar, 1)
		any := false
		for a := 0; a < A; a++ {
			if pr.Apps[a].Payoff <= 0 {
				continue
			}
			any = true
			terms := []lp.Term{{Var: tVar, Coeff: 1}}
			for l := 0; l < K; l++ {
				if idx, ok := m.varIdx[appVar{a, l}]; ok {
					terms = append(terms, lp.Term{Var: idx, Coeff: -pr.Apps[a].Payoff})
				}
			}
			prob.AddConstraint(terms, lp.LE, 0)
		}
		if !any {
			return nil, fmt.Errorf("multiapp: MAXMIN with no positive payoff")
		}
	default:
		return nil, fmt.Errorf("multiapp: unknown objective %v", obj)
	}

	// (7b) speeds.
	m.speedRow = make([]int, K)
	for l := 0; l < K; l++ {
		m.speedRow[l] = -1
		var terms []lp.Term
		for a := 0; a < A; a++ {
			if idx, ok := m.varIdx[appVar{a, l}]; ok {
				terms = append(terms, lp.Term{Var: idx, Coeff: 1})
			}
		}
		if len(terms) > 0 {
			m.speedRow[l] = prob.AddConstraint(terms, lp.LE, pl.Clusters[l].Speed)
		}
	}
	// (7c) gateways.
	m.gatewayRow = make([]int, K)
	for k := 0; k < K; k++ {
		m.gatewayRow[k] = -1
		var terms []lp.Term
		for a := 0; a < A; a++ {
			origin := pr.Apps[a].Origin
			for l := 0; l < K; l++ {
				idx, ok := m.varIdx[appVar{a, l}]
				if !ok {
					continue
				}
				if (origin == k && l != k) || (origin != k && l == k) {
					terms = append(terms, lp.Term{Var: idx, Coeff: 1})
				}
			}
		}
		if len(terms) > 0 {
			m.gatewayRow[k] = prob.AddConstraint(terms, lp.LE, pl.Clusters[k].Gateway)
		}
	}
	// (7d)+(7e) per link, pooled per origin route. Links carrying a
	// single pooled variable become native upper bounds instead of
	// rows: α/bw ≤ budget ⇔ α ≤ budget·bw.
	linkUse := make([][]lp.Term, len(pl.Links))
	for _, v := range vars {
		origin := pr.Apps[v.a].Origin
		if v.l == origin {
			continue
		}
		rt := pl.Route(origin, v.l)
		if rt.MinBW <= 0 || math.IsInf(rt.MinBW, 1) {
			continue
		}
		inv := 1.0 / rt.MinBW
		for _, li := range rt.Links {
			linkUse[li] = append(linkUse[li], lp.Term{Var: m.varIdx[v], Coeff: inv})
		}
	}
	m.linkRow = make([]int, len(pl.Links))
	m.linkVar = make([]int, len(pl.Links))
	m.budget = make([]float64, len(pl.Links))
	m.varBW = make(map[int]float64)
	m.varLinks = make(map[int][]int)
	m.prob = prob
	for li := range pl.Links {
		m.linkRow[li], m.linkVar[li] = -1, -1
		m.budget[li] = float64(pl.Links[li].MaxConnect)
		use := linkUse[li]
		switch {
		case len(use) == 0:
		case len(use) == 1:
			v := use[0].Var
			m.linkVar[li] = v
			m.varBW[v] = 1 / use[0].Coeff // the route's MinBW
			m.varLinks[v] = append(m.varLinks[v], li)
		default:
			m.linkRow[li] = prob.AddConstraint(use, lp.LE, m.budget[li])
		}
	}
	for v := range m.varLinks {
		m.applyVarCap(v)
	}

	m.rev = lp.NewRevised(prob)
	return m, nil
}

// applyVarCap writes the effective native upper bound of variable v:
// the tightest budget·bw cap among the bound-encoded links on its
// route (links shared with other routes keep their rows and do not
// participate).
func (m *Model) applyVarCap(v int) {
	ub := math.Inf(1)
	for _, li := range m.varLinks[v] {
		if c := m.budget[li] * m.varBW[v]; c < ub {
			ub = c
		}
	}
	m.prob.SetVarBounds(v, 0, ub)
}

// SetSpeed mutates cluster l's computing-speed capacity (7b). A
// cluster hosting no activity variables has no speed row; the call is
// then a no-op.
func (m *Model) SetSpeed(l int, speed float64) error {
	if l < 0 || l >= len(m.speedRow) {
		return fmt.Errorf("multiapp: cluster %d out of range", l)
	}
	if speed < 0 || math.IsNaN(speed) || math.IsInf(speed, 0) {
		return fmt.Errorf("multiapp: speed %g invalid", speed)
	}
	if r := m.speedRow[l]; r >= 0 {
		m.prob.SetRHS(r, speed)
	}
	return nil
}

// SetGateway mutates cluster k's gateway capacity (7c).
func (m *Model) SetGateway(k int, g float64) error {
	if k < 0 || k >= len(m.gatewayRow) {
		return fmt.Errorf("multiapp: cluster %d out of range", k)
	}
	if g < 0 || math.IsNaN(g) || math.IsInf(g, 0) {
		return fmt.Errorf("multiapp: gateway %g invalid", g)
	}
	if r := m.gatewayRow[k]; r >= 0 {
		m.prob.SetRHS(r, g)
	}
	return nil
}

// SetLinkBudget mutates backbone link li's connection budget (7d):
// an RHS change for shared links, a native upper-bound change for
// links that were folded into a variable bound at build time. Both
// preserve warm-startability.
func (m *Model) SetLinkBudget(li int, maxConnect float64) error {
	if li < 0 || li >= len(m.linkRow) {
		return fmt.Errorf("multiapp: link %d out of range", li)
	}
	if maxConnect < 0 || math.IsNaN(maxConnect) || math.IsInf(maxConnect, 0) {
		return fmt.Errorf("multiapp: max-connect %g invalid", maxConnect)
	}
	m.budget[li] = maxConnect
	if r := m.linkRow[li]; r >= 0 {
		m.prob.SetRHS(r, maxConnect)
	} else if v := m.linkVar[li]; v >= 0 {
		m.applyVarCap(v)
	}
	return nil
}

// CapacityState is an opaque snapshot of a Model's mutable capacity
// state (speed/gateway right-hand sides and link budgets, including
// the bound-encoded ones). It exists for what-if queries — mutate,
// solve, RestoreState — mirroring core.Model's snapshot hook.
type CapacityState struct {
	speed, gateway []float64 // RHS per cluster (NaN where no row exists)
	budget         []float64
}

// CaptureState snapshots the model's current capacity state as a deep
// copy; later mutations do not affect it.
func (m *Model) CaptureState() *CapacityState {
	K := len(m.speedRow)
	s := &CapacityState{
		speed:   make([]float64, K),
		gateway: make([]float64, K),
		budget:  append([]float64(nil), m.budget...),
	}
	for i := 0; i < K; i++ {
		s.speed[i] = math.NaN()
		s.gateway[i] = math.NaN()
		if r := m.speedRow[i]; r >= 0 {
			s.speed[i] = m.prob.RHS(r)
		}
		if r := m.gatewayRow[i]; r >= 0 {
			s.gateway[i] = m.prob.RHS(r)
		}
	}
	return s
}

// RestoreState restores a snapshot taken by CaptureState on this
// model, undoing every SetSpeed/SetGateway/SetLinkBudget issued since.
// All writes are RHS or variable-bound mutations, so the model's
// internal warm-start basis remains usable. A snapshot from a
// different model panics.
func (m *Model) RestoreState(s *CapacityState) {
	if len(s.budget) != len(m.budget) || len(s.speed) != len(m.speedRow) {
		panic("multiapp: RestoreState with a snapshot from a different model")
	}
	for i := 0; i < len(m.speedRow); i++ {
		if r := m.speedRow[i]; r >= 0 {
			m.prob.SetRHS(r, s.speed[i])
		}
		if r := m.gatewayRow[i]; r >= 0 {
			m.prob.SetRHS(r, s.gateway[i])
		}
	}
	copy(m.budget, s.budget)
	for li := range m.budget {
		if r := m.linkRow[li]; r >= 0 {
			m.prob.SetRHS(r, m.budget[li])
		}
	}
	for v := range m.varLinks {
		m.applyVarCap(v)
	}
}

// Basis returns the basis snapshot the last Solve ended with (nil
// before the first solve) — the multiapp half of the session
// serialization hooks: together with the platform description and the
// committed capacity state it is everything a replica needs to
// rebuild this model warm.
func (m *Model) Basis() *lp.Basis { return m.basis }

// InstallBasis seeds the model's carried basis — paired with
// PrimeWarm when rebuilding from a serialized snapshot, so the first
// Solve restarts warm from the imported basis.
func (m *Model) InstallBasis(b *lp.Basis) { m.basis = b }

// PrimeWarm prepares this model's freshly built solver to accept an
// imported basis warm (see lp.Revised.PrimeWarm). A no-op once the
// model has solved.
func (m *Model) PrimeWarm() { m.rev.PrimeWarm() }

// Solve solves the relaxation under the current capacities,
// warm-starting from the previous solve's basis when one exists.
func (m *Model) Solve() (*RelaxedSolution, error) {
	sol, basis, err := m.rev.SolveFrom(m.basis)
	if err != nil {
		return nil, err
	}
	m.basis = basis
	if sol.Status != lp.Optimal {
		return nil, fmt.Errorf("multiapp: relaxation %v (zero is always feasible)", sol.Status)
	}
	K := m.pr.Platform.K()
	A := len(m.pr.Apps)
	out := &RelaxedSolution{Objective: sol.Objective}
	out.Alpha = make([][]float64, A)
	for a := 0; a < A; a++ {
		out.Alpha[a] = make([]float64, K)
	}
	for v, idx := range m.varIdx {
		x := sol.X[idx]
		if x < 0 {
			x = 0
		}
		out.Alpha[v.a][v.l] = x
	}
	return out, nil
}
