package multiapp

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/lp"
	"repro/internal/platgen"
)

// TestModelWarmRebuildFromExportedBasis is the multiapp half of the
// session-portability contract: a Model driven through capacity drift
// exports its basis (Basis/Export), and a brand-new Model built from
// a platform carrying the same capacities — as a replica rebuilding
// from a snapshot would — installs it (ImportBasis/InstallBasis) over
// a primed solver and re-solves with zero cold solves to the same
// objective.
func TestModelWarmRebuildFromExportedBasis(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		rng := rand.New(rand.NewSource(seed + 400))
		params := platgen.Params{
			K:             3 + rng.Intn(4),
			Connectivity:  0.6,
			Heterogeneity: 0.4,
			MeanG:         150,
			MeanBW:        20,
			MeanMaxCon:    5,
		}
		pl, err := platgen.Generate(params, rng)
		if err != nil {
			t.Fatal(err)
		}
		K := pl.K()
		var apps []App
		for a := 0; a < K+2; a++ {
			apps = append(apps, App{Name: "a", Origin: rng.Intn(K), Payoff: float64(1 + rng.Intn(3))})
		}
		obj := []core.Objective{core.SUM, core.MAXMIN}[seed%2]

		// Drive the source model through drift, mirroring every change
		// onto a cloned platform (the "committed state" a snapshot
		// carries).
		src, err := (&Problem{Platform: pl, Apps: apps}).NewModel(obj)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := src.Solve(); err != nil {
			t.Fatal(err)
		}
		mod := pl.Clone()
		for epoch := 0; epoch < 3; epoch++ {
			for k := 0; k < K; k++ {
				mod.Clusters[k].Gateway *= 0.6 + 0.5*rng.Float64()
				mod.Clusters[k].Speed *= 0.6 + 0.5*rng.Float64()
				if err := src.SetGateway(k, mod.Clusters[k].Gateway); err != nil {
					t.Fatal(err)
				}
				if err := src.SetSpeed(k, mod.Clusters[k].Speed); err != nil {
					t.Fatal(err)
				}
			}
			if _, err := src.Solve(); err != nil {
				t.Fatal(err)
			}
		}
		want, err := src.Solve()
		if err != nil {
			t.Fatal(err)
		}
		if src.Basis() == nil {
			t.Fatalf("seed %d: no carried basis after solves", seed)
		}
		cols, upper := src.Basis().Export()

		// Replica: fresh model over the drifted platform, primed and
		// seeded with the imported basis.
		dst, err := (&Problem{Platform: mod, Apps: apps}).NewModel(obj)
		if err != nil {
			t.Fatal(err)
		}
		dst.PrimeWarm()
		dst.InstallBasis(lp.ImportBasis(cols, upper))
		got, err := dst.Solve()
		if err != nil {
			t.Fatalf("seed %d: rebuilt solve: %v", seed, err)
		}
		if st := dst.rev.Stats(); st.ColdSolves != 0 || st.ColdFallbacks != 0 {
			t.Fatalf("seed %d: rebuild was not warm: %+v", seed, st)
		}
		if diff := math.Abs(got.Objective - want.Objective); diff > 1e-9*(1+math.Abs(want.Objective)) {
			t.Fatalf("seed %d: rebuilt objective %g vs source %g (diff %g)", seed, got.Objective, want.Objective, diff)
		}
		for a := range want.Alpha {
			for l := range want.Alpha[a] {
				if math.Abs(got.Alpha[a][l]-want.Alpha[a][l]) > 1e-9 {
					t.Fatalf("seed %d: alpha[%d][%d] = %g vs %g", seed, a, l, got.Alpha[a][l], want.Alpha[a][l])
				}
			}
		}
	}
}
