// Package multiapp implements the extension the paper sketches in
// §3.1: "our method is easily extensible to the case in which more
// than one application originate from the same cluster". Activity
// variables become α_{a,l} — the load of application a (with origin
// cluster origin(a)) computed on cluster l — while the platform
// constraints stay per-cluster: the cluster speeds (7b), the gateway
// capacities (7c) and the per-route connection budgets (7d)/(7e) are
// shared by all applications of a cluster. Connections on a route
// (k,l) are pooled across the applications originating at k.
package multiapp

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/platform"
)

// App is one divisible-load application: it originates at cluster
// Origin (where its input data lives) and carries payoff factor
// Payoff (π_a of §3.1).
type App struct {
	Name   string
	Origin int
	Payoff float64
}

// Problem couples a platform with any number of applications. Unlike
// core.Problem, several applications may share an origin cluster and
// clusters may host no application at all.
type Problem struct {
	Platform *platform.Platform
	Apps     []App
}

// Validate checks origins and payoffs.
func (pr *Problem) Validate() error {
	if pr.Platform == nil {
		return fmt.Errorf("multiapp: nil platform")
	}
	if err := pr.Platform.Validate(); err != nil {
		return err
	}
	if len(pr.Apps) == 0 {
		return fmt.Errorf("multiapp: no applications")
	}
	for a, app := range pr.Apps {
		if app.Origin < 0 || app.Origin >= pr.Platform.K() {
			return fmt.Errorf("multiapp: app %d origin %d out of range", a, app.Origin)
		}
		if app.Payoff < 0 || math.IsNaN(app.Payoff) || math.IsInf(app.Payoff, 0) {
			return fmt.Errorf("multiapp: app %d payoff %g invalid", a, app.Payoff)
		}
	}
	return nil
}

// Allocation is a steady-state operating point: Alpha[a][l] is the
// load of application a computed on cluster l per time unit;
// Beta[k][l] is the pooled connection count from cluster k to l.
type Allocation struct {
	Alpha [][]float64
	Beta  [][]int
}

// AppThroughput returns Σ_l α_{a,l}.
func (al *Allocation) AppThroughput(a int) float64 {
	sum := 0.0
	for _, v := range al.Alpha[a] {
		sum += v
	}
	return sum
}

// Objective evaluates SUM or MAXMIN over the applications (MAXMIN
// over those with positive payoff).
func (pr *Problem) Objective(obj core.Objective, al *Allocation) float64 {
	switch obj {
	case core.SUM:
		total := 0.0
		for a, app := range pr.Apps {
			total += app.Payoff * al.AppThroughput(a)
		}
		return total
	case core.MAXMIN:
		minv := math.Inf(1)
		seen := false
		for a, app := range pr.Apps {
			if app.Payoff <= 0 {
				continue
			}
			seen = true
			if v := app.Payoff * al.AppThroughput(a); v < minv {
				minv = v
			}
		}
		if !seen {
			return 0
		}
		return minv
	}
	panic(fmt.Sprintf("multiapp: unknown objective %d", int(obj)))
}

// CheckAllocation verifies the shared-platform analogues of
// Equations (7) within tolerance tol.
func (pr *Problem) CheckAllocation(al *Allocation, tol float64) error {
	if err := pr.Validate(); err != nil {
		return err
	}
	K := pr.Platform.K()
	A := len(pr.Apps)
	if len(al.Alpha) != A || len(al.Beta) != K {
		return fmt.Errorf("multiapp: allocation shape mismatch")
	}
	pl := pr.Platform
	// Signs, route existence.
	for a := 0; a < A; a++ {
		if len(al.Alpha[a]) != K {
			return fmt.Errorf("multiapp: alpha row %d has wrong width", a)
		}
		for l := 0; l < K; l++ {
			if al.Alpha[a][l] < -tol {
				return fmt.Errorf("multiapp: α_{%d,%d} = %g < 0", a, l, al.Alpha[a][l])
			}
			k := pr.Apps[a].Origin
			if l != k && al.Alpha[a][l] > tol && !pl.Route(k, l).Exists {
				return fmt.Errorf("multiapp: α_{%d,%d} over nonexistent route", a, l)
			}
		}
	}
	// (7b) speeds.
	for l := 0; l < K; l++ {
		in := 0.0
		for a := 0; a < A; a++ {
			in += al.Alpha[a][l]
		}
		if s := pl.Clusters[l].Speed; in > s+tol*(1+s) {
			return fmt.Errorf("multiapp: cluster %d overloaded: %g > %g", l, in, s)
		}
	}
	// (7c) gateways: all remote traffic in or out of cluster k.
	for k := 0; k < K; k++ {
		traffic := 0.0
		for a := 0; a < A; a++ {
			origin := pr.Apps[a].Origin
			for l := 0; l < K; l++ {
				if origin == k && l != k {
					traffic += al.Alpha[a][l]
				}
				if origin != k && l == k {
					traffic += al.Alpha[a][l]
				}
			}
		}
		if g := pl.Clusters[k].Gateway; traffic > g+tol*(1+g) {
			return fmt.Errorf("multiapp: gateway %d overloaded: %g > %g", k, traffic, g)
		}
	}
	// (7d) pooled connection budgets.
	used := make([]int, len(pl.Links))
	for k := 0; k < K; k++ {
		if len(al.Beta[k]) != K {
			return fmt.Errorf("multiapp: beta row %d has wrong width", k)
		}
		for l := 0; l < K; l++ {
			b := al.Beta[k][l]
			if b < 0 {
				return fmt.Errorf("multiapp: β_{%d,%d} < 0", k, l)
			}
			if b == 0 || k == l {
				continue
			}
			rt := pl.Route(k, l)
			if !rt.Exists {
				return fmt.Errorf("multiapp: β_{%d,%d} over nonexistent route", k, l)
			}
			for _, li := range rt.Links {
				used[li] += b
			}
		}
	}
	for li, u := range used {
		if u > pl.Links[li].MaxConnect {
			return fmt.Errorf("multiapp: link %d carries %d connections, max %d", li, u, pl.Links[li].MaxConnect)
		}
	}
	// (7e) pooled route bandwidth.
	for k := 0; k < K; k++ {
		for l := 0; l < K; l++ {
			if k == l {
				continue
			}
			flow := 0.0
			for a := 0; a < A; a++ {
				if pr.Apps[a].Origin == k {
					flow += al.Alpha[a][l]
				}
			}
			if flow <= tol {
				continue
			}
			bw := pl.RouteBW(k, l)
			if math.IsInf(bw, 1) {
				continue
			}
			capF := float64(al.Beta[k][l]) * bw
			if flow > capF+tol*(1+capF) {
				return fmt.Errorf("multiapp: route (%d,%d) flow %g exceeds β·bw %g", k, l, flow, capF)
			}
		}
	}
	return nil
}

// RelaxedSolution is the rational relaxation optimum for the
// multi-application problem.
type RelaxedSolution struct {
	Alpha     [][]float64 // [app][cluster]
	Objective float64
}

// Relaxed solves the rational relaxation in α-space, exactly like
// core.Relaxed but with one variable row per application. Pooled
// connections are eliminated the same way: route (k,l) consumes
// (Σ_{a at k} α_{a,l})/bw_min connection-equivalents on each of its
// links.
//
// This is the one-shot convenience wrapper over Model: callers that
// re-solve under shifting capacities (the §1 adaptability loop)
// should hold a Model and use its warm-started Solve instead.
func (pr *Problem) Relaxed(obj core.Objective) (*RelaxedSolution, error) {
	m, err := pr.NewModel(obj)
	if err != nil {
		return nil, err
	}
	return m.Solve()
}

// Greedy is the §5.1 heuristic generalized to applications: at every
// step the application with the smallest relative share α_a·π_a picks
// its most profitable cluster; pooled route connections are opened on
// demand. Applications with payoff 0 are excluded.
func (pr *Problem) Greedy() (*Allocation, error) {
	if err := pr.Validate(); err != nil {
		return nil, err
	}
	K := pr.Platform.K()
	A := len(pr.Apps)
	pl := pr.Platform
	al := &Allocation{Alpha: make([][]float64, A), Beta: make([][]int, K)}
	for a := 0; a < A; a++ {
		al.Alpha[a] = make([]float64, K)
	}
	for k := 0; k < K; k++ {
		al.Beta[k] = make([]int, K)
	}
	res := platform.NewResidual(pl)
	// Residual per-route capacity opened so far but not yet used:
	// pooled connections can carry more than one app's traffic.
	routeSpare := make(map[core.Pair]float64)

	live := make([]bool, A)
	n := 0
	for a := 0; a < A; a++ {
		if pr.Apps[a].Payoff > 0 {
			live[a] = true
			n++
		}
	}
	totalSlots := 0
	for _, mc := range res.MaxConnect {
		totalSlots += mc
	}
	maxSteps := 100*A + totalSlots + 1000
	const tol = 1e-9

	for step := 0; n > 0 && step < maxSteps; step++ {
		// Select the app with the smallest share.
		sel := -1
		for a := 0; a < A; a++ {
			if !live[a] {
				continue
			}
			if sel == -1 {
				sel = a
				continue
			}
			sa := al.AppThroughput(a) * pr.Apps[a].Payoff
			sb := al.AppThroughput(sel) * pr.Apps[sel].Payoff
			if sa < sb-tol || (math.Abs(sa-sb) <= tol && pr.Apps[a].Payoff > pr.Apps[sel].Payoff) {
				sel = a
			}
		}
		origin := pr.Apps[sel].Origin
		// Pick the best target.
		bestL, bestB := -1, 0.0
		for l := 0; l < K; l++ {
			var b float64
			if l == origin {
				b = res.Speed[l]
			} else {
				rt := pl.Route(origin, l)
				if !rt.Exists {
					continue
				}
				// Either spare pooled capacity or a fresh connection.
				spare := math.Min(routeSpare[core.Pair{K: origin, L: l}],
					minFloat(res.Gateway[origin], res.Gateway[l], res.Speed[l]))
				fresh := 0.0
				if res.RouteOpen(origin, l) {
					fresh = minFloat(res.Gateway[origin], rt.MinBW, res.Gateway[l], res.Speed[l])
				}
				b = math.Max(spare, fresh)
			}
			if b > bestB+tol {
				bestB = b
				bestL = l
			}
		}
		if bestL == -1 || bestB <= tol {
			live[sel] = false
			n--
			continue
		}
		if bestL == origin {
			// Local step with the §5.1 contention guard, pooled form.
			amount := 0.0
			for m := 0; m < K; m++ {
				if m == origin {
					continue
				}
				cand := minFloat(res.Gateway[origin], pl.RouteBW(m, origin), res.Gateway[m], res.Speed[origin])
				if !res.RouteOpen(m, origin) {
					cand = 0
				}
				if cand > amount {
					amount = cand
				}
			}
			if amount > res.Speed[origin] {
				amount = res.Speed[origin]
			}
			if amount <= tol {
				live[sel] = false
				n--
				continue
			}
			res.Speed[origin] -= amount
			al.Alpha[sel][origin] += amount
			continue
		}
		// Remote step: use spare pooled capacity first, else open a
		// new connection.
		l := bestL
		pair := core.Pair{K: origin, L: l}
		amount := bestB
		spare := routeSpare[pair]
		if amount <= spare+tol && spare > tol {
			if amount > spare {
				amount = spare
			}
			routeSpare[pair] = spare - amount
		} else {
			res.OpenConnection(origin, l)
			al.Beta[origin][l]++
			bw := pl.RouteBW(origin, l)
			if !math.IsInf(bw, 1) {
				routeSpare[pair] = spare + bw - amount
			}
		}
		res.Speed[l] -= amount
		res.Gateway[origin] -= amount
		res.Gateway[l] -= amount
		al.Alpha[sel][l] += amount
	}
	return al, nil
}

func minFloat(vs ...float64) float64 {
	m := math.Inf(1)
	for _, v := range vs {
		if v < m {
			m = v
		}
	}
	return m
}
