package schedule

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/heuristics"
	"repro/internal/platform"
	"repro/internal/platgen"
)

func twoClusterProblem() *core.Problem {
	p := &platform.Platform{
		Routers: 2,
		Links:   []platform.Link{{U: 0, V: 1, BW: 10, MaxConnect: 3}},
		Clusters: []platform.Cluster{
			{Name: "a", Speed: 100, Gateway: 50, Router: 0},
			{Name: "b", Speed: 100, Gateway: 50, Router: 1},
		},
	}
	if err := p.ComputeRoutes(); err != nil {
		panic(err)
	}
	return core.NewProblem(p)
}

func randomSolvedProblem(seed int64, maxK int) (*core.Problem, *core.Allocation) {
	rng := rand.New(rand.NewSource(seed))
	params := platgen.Params{
		K:             2 + rng.Intn(maxK-1),
		Connectivity:  0.3 + 0.5*rng.Float64(),
		Heterogeneity: 0.2 + 0.6*rng.Float64(),
		MeanG:         50 + 400*rng.Float64(),
		MeanBW:        10 + 80*rng.Float64(),
		MeanMaxCon:    2 + 20*rng.Float64(),
	}
	pl, err := platgen.Generate(params, rng)
	if err != nil {
		panic(err)
	}
	pr := core.NewProblem(pl)
	return pr, heuristics.Greedy(pr)
}

func TestBuildSimple(t *testing.T) {
	pr := twoClusterProblem()
	a := core.NewAllocation(2)
	a.Alpha[0][0] = 100
	a.Alpha[1][1] = 70
	a.Alpha[1][0] = 0 // cluster 0 already saturated
	s, err := Build(pr, a, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if s.Period != 1000 {
		t.Fatalf("period = %g", s.Period)
	}
	if s.Compute[0][0] != 100000 || s.Compute[1][1] != 70000 {
		t.Fatalf("compute = %v", s.Compute)
	}
	if got := s.Throughput(0); math.Abs(got-100) > 1e-9 {
		t.Fatalf("throughput 0 = %g", got)
	}
}

func TestBuildRejectsBadInput(t *testing.T) {
	pr := twoClusterProblem()
	a := core.NewAllocation(2)
	if _, err := Build(pr, a, 0); err == nil {
		t.Fatal("zero denominator must fail")
	}
	a.Alpha[0][0] = 1e9 // violates speed
	if _, err := Build(pr, a, 100); err == nil {
		t.Fatal("invalid allocation must fail")
	}
}

func TestBuildFlooringNeverGains(t *testing.T) {
	pr := twoClusterProblem()
	a := core.NewAllocation(2)
	a.Alpha[0][0] = 99.9995
	a.Alpha[1][1] = 33.3333333
	s, err := Build(pr, a, 1000)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 2; k++ {
		if s.Throughput(k) > a.AppThroughput(k)+1e-9 {
			t.Fatalf("app %d: schedule throughput %g exceeds allocation %g", k, s.Throughput(k), a.AppThroughput(k))
		}
		if a.AppThroughput(k)-s.Throughput(k) > 2.0/1000 {
			t.Fatalf("app %d: flooring lost too much: %g vs %g", k, s.Throughput(k), a.AppThroughput(k))
		}
	}
}

func TestBuildSnapsNearIntegers(t *testing.T) {
	// A value that is exactly 30 up to float noise must floor to
	// 30*denom, not 30*denom-1.
	pr := twoClusterProblem()
	a := core.NewAllocation(2)
	a.Alpha[0][1] = 29.999999999999996
	a.Beta[0][1] = 3
	s, err := Build(pr, a, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if s.Transfer[0][1] != 30000 {
		t.Fatalf("transfer = %d, want 30000", s.Transfer[0][1])
	}
}

func TestRationalBelow(t *testing.T) {
	cases := []struct {
		x        float64
		maxDenom int64
		wantU    int64
		wantV    int64
	}{
		{0, 100, 0, 1},
		{-1, 100, 0, 1},
		{0.5, 100, 1, 2},
		{1.0 / 3, 100, 1, 3},
		{2.5, 10, 5, 2},
		{7, 100, 7, 1},
	}
	for _, tc := range cases {
		u, v := RationalBelow(tc.x, tc.maxDenom)
		if u != tc.wantU || v != tc.wantV {
			t.Fatalf("RationalBelow(%g,%d) = %d/%d, want %d/%d", tc.x, tc.maxDenom, u, v, tc.wantU, tc.wantV)
		}
	}
}

// TestPropertyRationalBelow: result is ≤ x, within 1/maxDenom of x,
// and the denominator respects the bound.
func TestPropertyRationalBelow(t *testing.T) {
	prop := func(raw float64, d int64) bool {
		x := math.Abs(raw)
		if math.IsInf(x, 0) || math.IsNaN(x) || x > 1e9 {
			return true
		}
		maxDenom := 1 + d%10000
		if maxDenom < 1 {
			maxDenom = 1
		}
		u, v := RationalBelow(x, maxDenom)
		if v < 1 || v > maxDenom || u < 0 {
			return false
		}
		val := float64(u) / float64(v)
		return val <= x+1e-12 && x-val <= 1.0/float64(maxDenom)+1e-9*x+1e-12
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestBuildLCMExactRationals(t *testing.T) {
	// α values 1/2 and 1/3: period lcm(2,3)=6, loads 3 and 2.
	pr := twoClusterProblem()
	a := core.NewAllocation(2)
	a.Alpha[0][0] = 0.5
	a.Alpha[1][1] = 1.0 / 3
	s, err := BuildLCM(pr, a, 1000, 1<<40)
	if err != nil {
		t.Fatal(err)
	}
	if s.Period != 6 {
		t.Fatalf("period = %g, want 6", s.Period)
	}
	if s.Compute[0][0] != 3 || s.Compute[1][1] != 2 {
		t.Fatalf("compute = %v", s.Compute)
	}
	// Exact rationals lose nothing.
	if s.Throughput(0) != 0.5 || math.Abs(s.Throughput(1)-1.0/3) > 1e-15 {
		t.Fatalf("throughputs %g %g", s.Throughput(0), s.Throughput(1))
	}
}

func TestBuildLCMFallsBackOnOverflow(t *testing.T) {
	// Irrational-ish α force huge denominators; with a tiny maxPeriod
	// the builder must fall back to the common-denominator scheme and
	// still validate.
	pr := twoClusterProblem()
	a := core.NewAllocation(2)
	a.Alpha[0][0] = math.Pi * 10
	a.Alpha[1][1] = math.E * 10
	s, err := BuildLCM(pr, a, 997, 10)
	if err != nil {
		t.Fatal(err)
	}
	if s.Period != 997 {
		t.Fatalf("period = %g, want fallback 997", s.Period)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	pr := twoClusterProblem()
	a := core.NewAllocation(2)
	a.Alpha[0][1] = 20
	a.Beta[0][1] = 2
	s, err := Build(pr, a, 100)
	if err != nil {
		t.Fatal(err)
	}
	s.Compute[0][1] += 1 << 40
	if err := s.Validate(pr); err == nil {
		t.Fatal("overloaded compute must fail validation")
	}
	s, _ = Build(pr, a, 100)
	s.Beta[0][1] = 99
	if err := s.Validate(pr); err == nil {
		t.Fatal("connection overflow must fail validation")
	}
	s, _ = Build(pr, a, 100)
	s.Transfer[0][1] = 1 << 40
	if err := s.Validate(pr); err == nil {
		t.Fatal("gateway/bandwidth overflow must fail validation")
	}
	s, _ = Build(pr, a, 100)
	s.Compute[0][1] = -1
	if err := s.Validate(pr); err == nil {
		t.Fatal("negative load must fail validation")
	}
}

func TestTimelineStructure(t *testing.T) {
	pr := twoClusterProblem()
	a := core.NewAllocation(2)
	a.Alpha[0][0] = 50
	a.Alpha[0][1] = 20
	a.Beta[0][1] = 2
	s, err := Build(pr, a, 10)
	if err != nil {
		t.Fatal(err)
	}
	const periods = 4
	events, err := s.Timeline(periods)
	if err != nil {
		t.Fatal(err)
	}
	var transfers, computes int
	for _, e := range events {
		switch e.Kind {
		case EventTransfer:
			transfers++
			if e.Period >= periods-1 {
				t.Fatalf("transfer in final period: %+v", e)
			}
			if e.From != 0 || e.To != 1 {
				t.Fatalf("unexpected transfer %+v", e)
			}
		case EventCompute:
			computes++
			if e.Period == 0 {
				t.Fatalf("compute in first period: %+v", e)
			}
		}
		if e.End-e.Start != s.Period {
			t.Fatalf("event does not span a period: %+v", e)
		}
	}
	// 3 transfer periods x 1 route; 3 compute periods x 2 compute cells.
	if transfers != 3 || computes != 6 {
		t.Fatalf("transfers=%d computes=%d", transfers, computes)
	}
	if _, err := s.Timeline(1); err == nil {
		t.Fatal("timeline with < 2 periods must fail")
	}
}

func TestAchievedThroughputConverges(t *testing.T) {
	pr := twoClusterProblem()
	a := core.NewAllocation(2)
	a.Alpha[0][0] = 80
	s, err := Build(pr, a, 1000)
	if err != nil {
		t.Fatal(err)
	}
	want := s.Throughput(0)
	prev := 0.0
	for _, n := range []int{2, 10, 100, 1000} {
		got := s.AchievedThroughput(0, n)
		if got <= prev-1e-12 {
			t.Fatalf("achieved throughput not monotone at %d periods", n)
		}
		if got > want+1e-12 {
			t.Fatalf("achieved %g exceeds steady-state %g", got, want)
		}
		prev = got
	}
	if math.Abs(s.AchievedThroughput(0, 1000)-want) > want*2e-3 {
		t.Fatalf("achieved %g far from steady-state %g", s.AchievedThroughput(0, 1000), want)
	}
	if s.AchievedThroughput(0, 1) != 0 {
		t.Fatal("horizon < 2 must yield 0")
	}
}

// TestPropertyScheduleFromHeuristics: schedules built from greedy
// allocations on random platforms always validate, and their
// throughput is within K/denom of the allocation's.
func TestPropertyScheduleFromHeuristics(t *testing.T) {
	prop := func(seed int64) bool {
		pr, a := randomSolvedProblem(seed, 8)
		const denom = 100000
		s, err := Build(pr, a, denom)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		for k := 0; k < pr.K(); k++ {
			th, at := s.Throughput(k), a.AppThroughput(k)
			if th > at+1e-9 {
				return false
			}
			if at-th > float64(pr.K())/denom+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestEventKindString(t *testing.T) {
	if EventTransfer.String() != "transfer" || EventCompute.String() != "compute" {
		t.Fatal("event kind strings wrong")
	}
}

func BenchmarkBuildK20(b *testing.B) {
	pr, a := randomSolvedProblem(7, 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(pr, a, 1000000); err != nil {
			b.Fatal(err)
		}
	}
}
