// Package schedule reconstructs an explicit periodic schedule from a
// valid steady-state allocation, following §3.2 of the paper: the
// rational α_{k,l} are expressed as integer loads over a common
// period T_p, and each period of the steady state (i) computes the
// chunks received during the previous period and (ii) transfers the
// chunks to be computed during the next one. The first period only
// communicates and the last one only computes.
package schedule

import (
	"fmt"
	"math"

	"repro/internal/core"
)

// Schedule is the compact description of the periodic schedule: per
// period of length Period (in time units), cluster l computes
// Compute[k][l] integer load units of application A_k, and cluster k
// ships Transfer[k][l] load units to cluster l over Beta[k][l]
// connections.
type Schedule struct {
	Period   float64
	Compute  [][]int64 // Compute[k][l]: load of app k computed at l per period
	Transfer [][]int64 // Transfer[k][l], k != l: load shipped k->l per period
	Beta     [][]int   // connections per route, copied from the allocation
}

// K returns the number of applications.
func (s *Schedule) K() int { return len(s.Compute) }

// AppLoadPerPeriod returns the total integer load of application k
// processed per period (local plus shipped).
func (s *Schedule) AppLoadPerPeriod(k int) int64 {
	var sum int64
	for _, v := range s.Compute[k] {
		sum += v
	}
	return sum
}

// Throughput returns the steady-state load per time unit the schedule
// realizes for application k; it is at most the allocation's
// AppThroughput and converges to it as the denominator grows.
func (s *Schedule) Throughput(k int) float64 {
	return float64(s.AppLoadPerPeriod(k)) / s.Period
}

// Build reconstructs a periodic schedule from a valid allocation
// using a common denominator: the period is T_p = denom time units
// and every α_{k,l} becomes the integer load ⌊α_{k,l}·denom⌋.
// Rounding down preserves every constraint of Equations (7) (they
// are all upper bounds with nonnegative coefficients), which
// Validate re-checks exactly in integer arithmetic.
//
// The loss relative to the allocation's throughput is below K/denom
// per application per time unit; denom = 10^6 makes it negligible.
func Build(pr *core.Problem, a *core.Allocation, denom int64) (*Schedule, error) {
	if denom <= 0 {
		return nil, fmt.Errorf("schedule: denominator %d, want positive", denom)
	}
	if err := pr.CheckAllocation(a, core.DefaultTol); err != nil {
		return nil, fmt.Errorf("schedule: allocation invalid: %w", err)
	}
	K := pr.K()
	s := &Schedule{
		Period:   float64(denom),
		Compute:  make([][]int64, K),
		Transfer: make([][]int64, K),
		Beta:     make([][]int, K),
	}
	for k := 0; k < K; k++ {
		s.Compute[k] = make([]int64, K)
		s.Transfer[k] = make([]int64, K)
		s.Beta[k] = append([]int(nil), a.Beta[k]...)
		for l := 0; l < K; l++ {
			// Snap within the allocation tolerance so that a
			// float-represented exact value (e.g. 29.999999999996)
			// is not needlessly truncated a full unit down.
			units := int64(math.Floor(a.Alpha[k][l]*float64(denom) + 1e-6))
			if units < 0 {
				units = 0
			}
			s.Compute[k][l] = units
			if k != l {
				s.Transfer[k][l] = units
			}
		}
	}
	if err := s.Validate(pr); err != nil {
		return nil, err
	}
	return s, nil
}

// BuildLCM reconstructs a schedule the way §3.2 describes it
// literally: each α_{k,l} is approximated by a rational u/v with
// v ≤ maxDenom using continued-fraction convergents (adjusted to
// never exceed α), and the period is lcm of all the v. When the lcm
// overflows maxPeriod the builder falls back to the common
// denominator maxDenom.
func BuildLCM(pr *core.Problem, a *core.Allocation, maxDenom, maxPeriod int64) (*Schedule, error) {
	if maxDenom <= 0 || maxPeriod <= 0 {
		return nil, fmt.Errorf("schedule: bad bounds maxDenom=%d maxPeriod=%d", maxDenom, maxPeriod)
	}
	if err := pr.CheckAllocation(a, core.DefaultTol); err != nil {
		return nil, fmt.Errorf("schedule: allocation invalid: %w", err)
	}
	K := pr.K()
	dens := make([][]int64, K)
	period := int64(1)
	overflow := false
	for k := 0; k < K && !overflow; k++ {
		dens[k] = make([]int64, K)
		for l := 0; l < K; l++ {
			_, v := RationalBelow(a.Alpha[k][l], maxDenom)
			dens[k][l] = v
			period = lcm(period, v)
			if period > maxPeriod || period <= 0 {
				overflow = true
				break
			}
		}
	}
	if overflow {
		return Build(pr, a, maxDenom)
	}
	s := &Schedule{
		Period:   float64(period),
		Compute:  make([][]int64, K),
		Transfer: make([][]int64, K),
		Beta:     make([][]int, K),
	}
	for k := 0; k < K; k++ {
		s.Compute[k] = make([]int64, K)
		s.Transfer[k] = make([]int64, K)
		s.Beta[k] = append([]int(nil), a.Beta[k]...)
		for l := 0; l < K; l++ {
			u, v := RationalBelow(a.Alpha[k][l], maxDenom)
			units := u * (period / v)
			s.Compute[k][l] = units
			if k != l {
				s.Transfer[k][l] = units
			}
		}
	}
	if err := s.Validate(pr); err != nil {
		return nil, err
	}
	return s, nil
}

// RationalBelow returns a rational u/v ≤ x with v ≤ maxDenom that is
// a best-effort approximation of x ≥ 0 (continued-fraction
// convergent, decremented if it overshoots). For x = 0 it returns
// 0/1.
func RationalBelow(x float64, maxDenom int64) (u, v int64) {
	if x <= 0 || math.IsNaN(x) {
		return 0, 1
	}
	if math.IsInf(x, 1) {
		panic("schedule: RationalBelow(+Inf)")
	}
	// Continued fraction expansion of x.
	var h0, h1 int64 = 1, int64(math.Floor(x)) // numerators
	var k0, k1 int64 = 0, 1                    // denominators
	frac := x - math.Floor(x)
	for i := 0; i < 64 && frac > 1e-12; i++ {
		inv := 1 / frac
		ai := int64(math.Floor(inv))
		frac = inv - math.Floor(inv)
		h2 := ai*h1 + h0
		k2 := ai*k1 + k0
		if k2 > maxDenom || k2 <= 0 || h2 < 0 {
			break
		}
		h0, h1 = h1, h2
		k0, k1 = k1, k2
	}
	u, v = h1, k1
	// Ensure u/v ≤ x (round down on overshoot).
	for u > 0 && float64(u)/float64(v) > x+1e-15 {
		u--
	}
	return u, v
}

func gcd(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func lcm(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	return a / gcd(a, b) * b
}

// Validate re-checks Equations (7) for the integer schedule against
// the platform, in exact integer/float arithmetic with no tolerance
// on the integer side: per period, cluster speeds (7b), gateway
// capacities (7c), connection budgets (7d) and per-route bandwidth
// (7e) must all hold.
func (s *Schedule) Validate(pr *core.Problem) error {
	K := pr.K()
	if s.K() != K {
		return fmt.Errorf("schedule: K mismatch: %d vs %d", s.K(), K)
	}
	pl := pr.Platform
	tp := s.Period
	// (7b)
	for l := 0; l < K; l++ {
		var in int64
		for k := 0; k < K; k++ {
			if s.Compute[k][l] < 0 {
				return fmt.Errorf("schedule: negative compute load at (%d,%d)", k, l)
			}
			in += s.Compute[k][l]
		}
		if float64(in) > pl.Clusters[l].Speed*tp*(1+1e-12) {
			return fmt.Errorf("schedule: cluster %d overloaded: %d load units in a period of %g at speed %g", l, in, tp, pl.Clusters[l].Speed)
		}
	}
	// (7c)
	for k := 0; k < K; k++ {
		var traffic int64
		for l := 0; l < K; l++ {
			if l == k {
				continue
			}
			traffic += s.Transfer[k][l] + s.Transfer[l][k]
		}
		if float64(traffic) > pl.Clusters[k].Gateway*tp*(1+1e-12) {
			return fmt.Errorf("schedule: gateway %d overloaded: %d units per period of %g at capacity %g", k, traffic, tp, pl.Clusters[k].Gateway)
		}
	}
	// (7d)
	used := make([]int, len(pl.Links))
	for k := 0; k < K; k++ {
		for l := 0; l < K; l++ {
			if k == l || s.Beta[k][l] == 0 {
				continue
			}
			rt := pl.Route(k, l)
			if !rt.Exists {
				return fmt.Errorf("schedule: β on nonexistent route (%d,%d)", k, l)
			}
			for _, li := range rt.Links {
				used[li] += s.Beta[k][l]
			}
		}
	}
	for li, u := range used {
		if u > pl.Links[li].MaxConnect {
			return fmt.Errorf("schedule: link %d carries %d connections, max %d", li, u, pl.Links[li].MaxConnect)
		}
	}
	// (7e)
	for k := 0; k < K; k++ {
		for l := 0; l < K; l++ {
			if k == l || s.Transfer[k][l] == 0 {
				continue
			}
			bw := pl.RouteBW(k, l)
			if math.IsInf(bw, 1) {
				continue
			}
			if float64(s.Transfer[k][l]) > float64(s.Beta[k][l])*bw*tp*(1+1e-12) {
				return fmt.Errorf("schedule: route (%d,%d) ships %d units per period, capacity %g", k, l, s.Transfer[k][l], float64(s.Beta[k][l])*bw*tp)
			}
		}
	}
	return nil
}

// EventKind tags timeline entries.
type EventKind int

const (
	// EventTransfer is a data chunk shipped from one cluster to
	// another during a period.
	EventTransfer EventKind = iota
	// EventCompute is a cluster processing a chunk during a period.
	EventCompute
)

func (e EventKind) String() string {
	if e == EventCompute {
		return "compute"
	}
	return "transfer"
}

// Event is one activity in the unrolled timeline. Amounts are in load
// units; Start/End in time units. In the fluid steady-state view each
// activity spans its whole period at constant rate.
type Event struct {
	Kind     EventKind
	Period   int
	App      int
	From, To int // From==To for compute events (the executing cluster is To)
	Amount   int64
	Start    float64
	End      float64
}

// Timeline unrolls numPeriods periods (numPeriods ≥ 2) into explicit
// events following §3.2: during period p < numPeriods-1 every
// transfer for the next period takes place, and during period p ≥ 1
// every cluster computes the chunks received in period p-1 (local
// chunks are computed from period 1 on as well, keeping all periods
// identical). Period 0 only communicates and the last period only
// computes.
func (s *Schedule) Timeline(numPeriods int) ([]Event, error) {
	if numPeriods < 2 {
		return nil, fmt.Errorf("schedule: timeline needs >= 2 periods, got %d", numPeriods)
	}
	K := s.K()
	var events []Event
	for p := 0; p < numPeriods; p++ {
		start := float64(p) * s.Period
		end := start + s.Period
		if p < numPeriods-1 {
			for k := 0; k < K; k++ {
				for l := 0; l < K; l++ {
					if k == l || s.Transfer[k][l] == 0 {
						continue
					}
					events = append(events, Event{
						Kind: EventTransfer, Period: p, App: k, From: k, To: l,
						Amount: s.Transfer[k][l], Start: start, End: end,
					})
				}
			}
		}
		if p >= 1 {
			for k := 0; k < K; k++ {
				for l := 0; l < K; l++ {
					if s.Compute[k][l] == 0 {
						continue
					}
					events = append(events, Event{
						Kind: EventCompute, Period: p, App: k, From: l, To: l,
						Amount: s.Compute[k][l], Start: start, End: end,
					})
				}
			}
		}
	}
	return events, nil
}

// AchievedThroughput returns the average load per time unit processed
// for application k over a horizon of numPeriods periods, including
// the empty first period — the quantity that converges to
// Throughput(k) as the horizon grows (steady-state argument of §1).
func (s *Schedule) AchievedThroughput(k, numPeriods int) float64 {
	if numPeriods < 2 {
		return 0
	}
	total := float64(s.AppLoadPerPeriod(k)) * float64(numPeriods-1)
	return total / (float64(numPeriods) * s.Period)
}
