package obs

import (
	"bytes"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "a counter")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	c.Set(17)
	if got := c.Value(); got != 17 {
		t.Fatalf("counter after Set = %d, want 17", got)
	}
	g := r.Gauge("test_gauge", "a gauge")
	if got := g.Value(); got != 0 {
		t.Fatalf("zero gauge = %v", got)
	}
	g.Set(-2.5)
	if got := g.Value(); got != -2.5 {
		t.Fatalf("gauge = %v, want -2.5", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	// Everything at or below the first bound lands in bucket 0.
	h.Observe(0)
	h.Observe(time.Microsecond)
	h.Observe(1024 * time.Nanosecond)
	if got := h.buckets[0].Load(); got != 3 {
		t.Fatalf("bucket 0 = %d, want 3", got)
	}
	// One past the first bound lands in bucket 1.
	h.Observe(1025 * time.Nanosecond)
	if got := h.buckets[1].Load(); got != 1 {
		t.Fatalf("bucket 1 = %d, want 1", got)
	}
	// An absurd duration lands in the overflow slot, not out of range.
	h.Observe(1000 * time.Hour)
	if got := h.buckets[histNumBuckets-1].Load(); got != 1 {
		t.Fatalf("overflow bucket = %d, want 1", got)
	}
	if got := h.Count(); got != 5 {
		t.Fatalf("count = %d, want 5", got)
	}
	wantSum := (time.Microsecond + 1024*time.Nanosecond + 1025*time.Nanosecond + 1000*time.Hour).Seconds()
	if got := h.SumSeconds(); math.Abs(got-wantSum) > 1e-9*wantSum {
		t.Fatalf("sum = %v, want %v", got, wantSum)
	}
}

func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty p50 = %v, want 0", got)
	}
	// 90 fast observations, 10 slow: p50 must sit in the fast bucket's
	// range, p99 in the slow one's.
	for i := 0; i < 90; i++ {
		h.Observe(3 * time.Microsecond) // bucket bound 4.096µs
	}
	for i := 0; i < 10; i++ {
		h.Observe(3 * time.Millisecond) // bucket bound 4.194304ms
	}
	if p50 := h.Quantile(0.5); p50 <= 0 || p50 > 4.096e-6 {
		t.Fatalf("p50 = %v, want in (0, 4.096µs]", p50)
	}
	if p99 := h.Quantile(0.99); p99 < 2.097152e-3 || p99 > 4.194304e-3 {
		t.Fatalf("p99 = %v, want within the 3ms bucket", p99)
	}
	// Quantiles are monotone in q.
	if h.Quantile(0.9) > h.Quantile(0.99) {
		t.Fatalf("p90 %v > p99 %v", h.Quantile(0.9), h.Quantile(0.99))
	}
}

func TestObserveAllocs(t *testing.T) {
	var h Histogram
	var c Counter
	var g Gauge
	allocs := testing.AllocsPerRun(100, func() {
		h.Observe(5 * time.Microsecond)
		c.Inc()
		g.Set(1.5)
	})
	if allocs != 0 {
		t.Fatalf("observation path allocates %v per op, want 0", allocs)
	}
}

func TestLabelsAndCardinalityCap(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("req_total", "requests", "endpoint")
	v.With("query").Add(2)
	v.With("epoch").Inc()
	if got := v.With("query").Value(); got != 2 {
		t.Fatalf("labeled counter = %d, want 2", got)
	}
	// Blow past the cap: excess series collapse into one overflow
	// series instead of growing without bound.
	hv := r.HistogramVec("lat_seconds", "latency", "session")
	for i := 0; i < MaxSeries+50; i++ {
		hv.With(fmt.Sprintf("sess-%04d", i)).Observe(time.Millisecond)
	}
	if over := hv.With("anything-new"); over != hv.f.get(overflowLabel).hist {
		t.Fatal("post-cap series did not collapse into the overflow series")
	}
	total := uint64(0)
	for _, s := range hv.f.sorted() {
		total += s.hist.Count()
	}
	if total != MaxSeries+50 {
		t.Fatalf("observations lost at the cap: %d, want %d", total, MaxSeries+50)
	}
	if n := len(hv.f.series); n > MaxSeries {
		t.Fatalf("series map grew to %d, want ≤ cap %d", n, MaxSeries)
	}
}

func TestWriteTextValidates(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "counts a").Add(3)
	r.Gauge("b_ratio", "a ratio with \"quotes\" and \\slashes").Set(0.25)
	h := r.HistogramVec("c_seconds", "latency", "endpoint")
	h.With("query").Observe(2 * time.Microsecond)
	h.With("query").Observe(3 * time.Millisecond)
	h.With("what\"if").Observe(time.Second)
	ran := false
	r.OnScrape(func() { ran = true })

	var buf bytes.Buffer
	if err := r.Gather(&buf); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("collector did not run")
	}
	out := buf.String()
	if err := ValidateText(strings.NewReader(out)); err != nil {
		t.Fatalf("own exposition fails validation: %v\n%s", err, out)
	}
	for _, want := range []string{
		"# TYPE a_total counter",
		"a_total 3",
		"# TYPE c_seconds histogram",
		`c_seconds_count{endpoint="query"} 2`,
		`le="+Inf"`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// Deterministic: a second scrape of unchanged state is identical.
	var buf2 bytes.Buffer
	if err := r.Gather(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf.String() != buf2.String() {
		t.Fatal("scrapes of unchanged state differ")
	}
}

func TestValidateTextRejects(t *testing.T) {
	cases := map[string]string{
		"no TYPE":            "foo_total 3\n",
		"negative counter":   "# TYPE x counter\nx -1\n",
		"bad value":          "# TYPE x gauge\nx abc\n",
		"bad name":           "# TYPE 9x gauge\n9x 1\n",
		"unquoted label":     "# TYPE x counter\nx{a=b} 1\n",
		"empty":              "",
		"histogram no +Inf":  "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n",
		"histogram no count": "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\nh_sum 1\n",
		"non-cumulative": "# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n",
		"count mismatch": "# TYPE h histogram\n" +
			"h_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 4\n",
	}
	for name, in := range cases {
		if err := ValidateText(strings.NewReader(in)); err == nil {
			t.Errorf("%s: validated but should not:\n%s", name, in)
		}
	}
	// And a well-formed non-trivial document passes.
	ok := "# HELP h latency\n# TYPE h histogram\n" +
		"h_bucket{le=\"0.1\"} 2\nh_bucket{le=\"+Inf\"} 3\nh_sum 0.5\nh_count 3\n" +
		"# TYPE g gauge\ng{peer=\"a\"} NaN\n"
	if err := ValidateText(strings.NewReader(ok)); err != nil {
		t.Fatalf("valid document rejected: %v", err)
	}
}

func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("n_total", "n")
	hv := r.HistogramVec("lat_seconds", "lat", "ep")
	var writers sync.WaitGroup
	for i := 0; i < 8; i++ {
		writers.Add(1)
		go func() {
			defer writers.Done()
			for j := 0; j < 5000; j++ {
				c.Inc()
				hv.With([]string{"a", "b", "c"}[j%3]).Observe(time.Duration(j) * time.Microsecond)
			}
		}()
	}
	// Scrape continuously while the writers hammer: every mid-storm
	// exposition must still validate.
	stop := make(chan struct{})
	scraper := make(chan struct{})
	go func() {
		defer close(scraper)
		for {
			select {
			case <-stop:
				return
			default:
			}
			var buf bytes.Buffer
			if err := r.Gather(&buf); err != nil {
				t.Error(err)
				return
			}
			if err := ValidateText(bytes.NewReader(buf.Bytes())); err != nil {
				t.Errorf("mid-storm scrape invalid: %v", err)
				return
			}
		}
	}()
	writers.Wait()
	close(stop)
	<-scraper
	if got := c.Value(); got != 8*5000 {
		t.Fatalf("counter = %d, want %d", got, 8*5000)
	}
	total := uint64(0)
	for _, ep := range []string{"a", "b", "c"} {
		total += hv.With(ep).Count()
	}
	if total != 8*5000 {
		t.Fatalf("histogram total = %d, want %d", total, 8*5000)
	}
}
