package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// ValidateText checks a Prometheus text exposition (version 0.0.4)
// for the properties a scraper relies on:
//
//   - every sample line parses as name{labels} value
//   - every sampled name is covered by a preceding # TYPE (histogram
//     samples may use the _bucket/_sum/_count suffixes of a declared
//     histogram family)
//   - metric and label names are well-formed, label values are
//     properly quoted
//   - counter and histogram sample values are non-negative
//   - per histogram series: buckets are cumulative (non-decreasing in
//     le order), a +Inf bucket exists, and _count equals it
//
// It is the format check behind cmd/promcheck (CI scrapes a live
// schedd and pipes /metrics through it) and the in-repo tests.
func ValidateText(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)

	types := map[string]string{} // family name -> counter|gauge|histogram
	type histSeries struct {
		buckets []histBucket
		count   *float64
		hasSum  bool
	}
	hists := map[string]*histSeries{} // family + base labels -> series
	lineNo := 0
	sawSample := false

	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				continue // free-form comment
			}
			name := fields[2]
			if !validName(name) {
				return fmt.Errorf("line %d: invalid metric name %q", lineNo, name)
			}
			if fields[1] == "TYPE" {
				if len(fields) != 4 {
					return fmt.Errorf("line %d: TYPE line without a type", lineNo)
				}
				switch fields[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return fmt.Errorf("line %d: unknown type %q", lineNo, fields[3])
				}
				if _, dup := types[name]; dup {
					return fmt.Errorf("line %d: duplicate TYPE for %q", lineNo, name)
				}
				types[name] = fields[3]
			}
			continue
		}

		sawSample = true
		name, labels, value, err := parseSample(line)
		if err != nil {
			return fmt.Errorf("line %d: %w", lineNo, err)
		}
		fam, suffix := baseFamily(name, types)
		typ, ok := types[fam]
		if !ok {
			return fmt.Errorf("line %d: sample %q has no preceding # TYPE", lineNo, name)
		}
		switch typ {
		case "counter":
			if value < 0 {
				return fmt.Errorf("line %d: counter %s is negative", lineNo, name)
			}
		case "histogram":
			if value < 0 {
				return fmt.Errorf("line %d: histogram sample %s is negative", lineNo, name)
			}
			key := fam + "|" + labelsKey(labels, "le")
			h := hists[key]
			if h == nil {
				h = &histSeries{}
				hists[key] = h
			}
			switch suffix {
			case "_bucket":
				le, ok := labels["le"]
				if !ok {
					return fmt.Errorf("line %d: %s without le label", lineNo, name)
				}
				bound, err := parseLe(le)
				if err != nil {
					return fmt.Errorf("line %d: %v", lineNo, err)
				}
				h.buckets = append(h.buckets, histBucket{le: bound, cum: value})
			case "_count":
				v := value
				h.count = &v
			case "_sum":
				h.hasSum = true
			default:
				return fmt.Errorf("line %d: bare sample %q for histogram family %q", lineNo, name, fam)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if !sawSample {
		return fmt.Errorf("no samples in exposition")
	}
	for key, h := range hists {
		if err := checkHistogram(h.buckets, h.count, h.hasSum); err != nil {
			return fmt.Errorf("histogram %s: %w", strings.SplitN(key, "|", 2)[0], err)
		}
	}
	return nil
}

type histBucket struct {
	le  float64
	cum float64
}

func checkHistogram(buckets []histBucket, count *float64, hasSum bool) error {
	if len(buckets) == 0 {
		return fmt.Errorf("no buckets")
	}
	sort.Slice(buckets, func(i, j int) bool { return buckets[i].le < buckets[j].le })
	last := buckets[len(buckets)-1]
	if !isInf(last.le) {
		return fmt.Errorf("missing +Inf bucket")
	}
	prev := -1.0
	for _, b := range buckets {
		if b.cum < prev {
			return fmt.Errorf("buckets not cumulative: %g after %g", b.cum, prev)
		}
		prev = b.cum
	}
	if count == nil {
		return fmt.Errorf("missing _count")
	}
	if !hasSum {
		return fmt.Errorf("missing _sum")
	}
	if *count != last.cum {
		return fmt.Errorf("_count %g != +Inf bucket %g", *count, last.cum)
	}
	return nil
}

func isInf(f float64) bool { return f > 1e308 }

func parseLe(s string) (float64, error) {
	if s == "+Inf" {
		return math.Inf(1), nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad le bound %q", s)
	}
	return v, nil
}

// baseFamily strips a histogram suffix when the stripped name is a
// declared histogram family; otherwise the name is its own family.
func baseFamily(name string, types map[string]string) (fam, suffix string) {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(name, suf); ok {
			if types[base] == "histogram" || types[base] == "summary" {
				return base, suf
			}
		}
	}
	return name, ""
}

// labelsKey serializes labels minus the excluded key, sorted, to
// identify one histogram series across its bucket/sum/count lines.
func labelsKey(labels map[string]string, exclude string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		if k == exclude {
			continue
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&sb, "%s=%q,", k, labels[k])
	}
	return sb.String()
}

// parseSample parses `name{label="v",...} value` (timestamp suffixes
// are not produced by this package and are rejected).
func parseSample(line string) (name string, labels map[string]string, value float64, err error) {
	labels = map[string]string{}
	rest := line
	i := strings.IndexAny(rest, "{ ")
	if i < 0 {
		return "", nil, 0, fmt.Errorf("malformed sample %q", line)
	}
	name = rest[:i]
	if !validName(name) {
		return "", nil, 0, fmt.Errorf("invalid metric name %q", name)
	}
	if rest[i] == '{' {
		rest = rest[i+1:]
		for {
			rest = strings.TrimLeft(rest, " ")
			if len(rest) == 0 {
				return "", nil, 0, fmt.Errorf("unterminated label set in %q", line)
			}
			if rest[0] == '}' {
				rest = rest[1:]
				break
			}
			eq := strings.Index(rest, "=")
			if eq < 0 {
				return "", nil, 0, fmt.Errorf("malformed labels in %q", line)
			}
			lname := strings.TrimSpace(rest[:eq])
			if !validName(lname) || strings.Contains(lname, ":") {
				return "", nil, 0, fmt.Errorf("invalid label name %q", lname)
			}
			rest = rest[eq+1:]
			if len(rest) == 0 || rest[0] != '"' {
				return "", nil, 0, fmt.Errorf("unquoted label value in %q", line)
			}
			val, n, perr := scanQuoted(rest)
			if perr != nil {
				return "", nil, 0, fmt.Errorf("%v in %q", perr, line)
			}
			labels[lname] = val
			rest = rest[n:]
			rest = strings.TrimLeft(rest, " ")
			if strings.HasPrefix(rest, ",") {
				rest = rest[1:]
			}
		}
	} else {
		rest = rest[i:]
	}
	rest = strings.TrimSpace(rest)
	if rest == "" {
		return "", nil, 0, fmt.Errorf("missing value in %q", line)
	}
	if strings.ContainsAny(rest, " \t") {
		return "", nil, 0, fmt.Errorf("unexpected trailing fields in %q", line)
	}
	v, perr := parseValue(rest)
	if perr != nil {
		return "", nil, 0, fmt.Errorf("bad value %q", rest)
	}
	return name, labels, v, nil
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return 0, nil // NaN is legal for gauges; treat as 0 for range checks
	}
	return strconv.ParseFloat(s, 64)
}

// scanQuoted reads a double-quoted, backslash-escaped string at the
// start of s, returning the unescaped value and bytes consumed.
func scanQuoted(s string) (val string, n int, err error) {
	if len(s) == 0 || s[0] != '"' {
		return "", 0, fmt.Errorf("expected quoted string")
	}
	var sb strings.Builder
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			if i+1 >= len(s) {
				return "", 0, fmt.Errorf("dangling escape")
			}
			i++
			switch s[i] {
			case 'n':
				sb.WriteByte('\n')
			case '\\', '"':
				sb.WriteByte(s[i])
			default:
				sb.WriteByte('\\')
				sb.WriteByte(s[i])
			}
		case '"':
			return sb.String(), i + 1, nil
		default:
			sb.WriteByte(s[i])
		}
	}
	return "", 0, fmt.Errorf("unterminated quoted string")
}
