package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
)

// ContentType is the Prometheus text exposition content type.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// WriteText renders the registry in Prometheus text exposition
// format (version 0.0.4): one # HELP and # TYPE line per family, then
// the series sorted by label value. Histograms render the full
// cumulative _bucket/_sum/_count triple. Collectors are NOT run here;
// Gather runs them and is what the HTTP handler uses.
func (r *Registry) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	r.mu.Lock()
	fams := make([]*family, len(r.families))
	copy(fams, r.families)
	r.mu.Unlock()
	for _, f := range fams {
		fmt.Fprintf(bw, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.kind)
		for _, s := range f.sorted() {
			labels := ""
			if f.label != "" {
				labels = fmt.Sprintf("{%s=%q}", f.label, s.labelValue)
			}
			switch f.kind {
			case kindCounter:
				fmt.Fprintf(bw, "%s%s %s\n", f.name, labels, formatUint(s.counter.Value()))
			case kindGauge:
				fmt.Fprintf(bw, "%s%s %s\n", f.name, labels, formatFloat(s.gauge.Value()))
			case kindHistogram:
				writeHistogram(bw, f, s)
			}
		}
	}
	return bw.Flush()
}

// writeHistogram renders one histogram series: cumulative buckets
// with exact power-of-two le bounds, then sum and count. The le label
// joins the family's own label when present.
func writeHistogram(w io.Writer, f *family, s *series) {
	b, total := s.hist.snapshot()
	prefix := f.name + "_bucket{"
	if f.label != "" {
		prefix = fmt.Sprintf("%s_bucket{%s=%q,", f.name, f.label, s.labelValue)
	}
	var cum uint64
	for i := 0; i < histNumFinite; i++ {
		cum += b[i]
		fmt.Fprintf(w, "%sle=%q} %s\n", prefix, formatFloat(bucketBound(i)), formatUint(cum))
	}
	fmt.Fprintf(w, "%sle=\"+Inf\"} %s\n", prefix, formatUint(total))
	labels := ""
	if f.label != "" {
		labels = fmt.Sprintf("{%s=%q}", f.label, s.labelValue)
	}
	fmt.Fprintf(w, "%s_sum%s %s\n", f.name, labels, formatFloat(float64(s.hist.sumNs.Load())/1e9))
	fmt.Fprintf(w, "%s_count%s %s\n", f.name, labels, formatUint(total))
}

func formatUint(v uint64) string { return strconv.FormatUint(v, 10) }

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// Gather runs the registered collectors, then renders.
func (r *Registry) Gather(w io.Writer) error {
	r.mu.Lock()
	collectors := make([]func(), len(r.collectors))
	copy(collectors, r.collectors)
	r.mu.Unlock()
	for _, c := range collectors {
		c()
	}
	return r.WriteText(w)
}

// Handler serves GET /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", ContentType)
		r.Gather(w) //nolint:errcheck // client gone mid-scrape: nothing to do
	})
}
