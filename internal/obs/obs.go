// Package obs is the zero-dependency metrics core behind the schedd
// observability layer: atomic counters and gauges, lock-free
// fixed-bucket latency histograms with exact quantile extraction,
// and a Prometheus text-exposition writer.
//
// Design constraints, in order:
//
//   - No locks and no allocations on the observation path. The warm
//     what-if solve path is pinned at 0 allocs/op by a guard test, and
//     request handlers observe latencies on every call; Observe, Add
//     and Set therefore touch only pre-allocated atomics. Locks exist
//     only on the series-creation path (first use of a label value)
//     and at scrape time.
//
//   - Exact tail quantiles without sampling. Histograms use fixed
//     power-of-two nanosecond buckets, so p50/p90/p99 come from a
//     cumulative bucket walk — bounded relative error from the bucket
//     width (≤ 2x), no reservoir, no decay, no data-dependent memory.
//
//   - Deterministic exposition. Families render in registration
//     order and series within a family in sorted label order, so two
//     scrapes of the same state are byte-identical and diffable.
//
//   - Bounded cardinality. A labeled family accepts at most
//     MaxSeries distinct label-value tuples; later tuples collapse
//     into a single overflow series (label value "overflow") instead
//     of growing without bound under e.g. per-session labels.
//
// The package deliberately implements only what the repo needs —
// counter, gauge, histogram, one flat label dimension per family —
// rather than the full Prometheus data model. ValidateText checks the
// exposition format and is reused by cmd/promcheck in CI.
package obs

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// MaxSeries bounds the number of distinct label values a family will
// track before collapsing further values into the overflow series.
const MaxSeries = 256

// overflowLabel is the label value that absorbs observations once a
// family hits MaxSeries. Its presence in a scrape is itself a signal:
// some label dimension is higher-cardinality than planned.
const overflowLabel = "overflow"

// A Counter is a monotonically increasing cumulative value.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds d (d is taken as non-negative; counters never go down).
func (c *Counter) Add(d uint64) { c.v.Add(d) }

// Set overwrites the cumulative total. It exists for mirrored
// counters: totals that are authoritatively maintained elsewhere
// (pool hit counts, solver pivot counters) and copied into the
// registry by a scrape-time collector. Mirrored sources are
// themselves monotone, so the exposed series still is.
func (c *Counter) Set(total uint64) { c.v.Store(total) }

// Value returns the current total.
func (c *Counter) Value() uint64 { return c.v.Load() }

// A Gauge is a float64 value that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value (zero before the first Set).
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram bucket layout: bucket i (0-based) covers durations
// ≤ 2^(histMinShift+i) nanoseconds; the last slot is the +Inf
// overflow. The span 1.024µs .. ~34.4s brackets everything from a
// single warm pivot to a pathological cold rebuild.
const (
	histMinShift   = 10 // first finite bound: 2^10 ns = 1.024µs
	histNumFinite  = 25 // last finite bound: 2^34 ns ≈ 17.2s
	histNumBuckets = histNumFinite + 1
)

// A Histogram is a fixed-bucket latency distribution. Observe is
// lock-free and allocation-free: one bits.Len64, two atomic adds.
type Histogram struct {
	buckets [histNumBuckets]atomic.Uint64
	sumNs   atomic.Uint64
}

// bucketIndex maps a nanosecond duration to its bucket.
func bucketIndex(ns int64) int {
	if ns <= 0 {
		return 0
	}
	// Bounds are inclusive: exactly 2^(histMinShift+i) ns belongs to
	// bucket i, hence the -1 before the shift.
	v := uint64(ns-1) >> histMinShift
	if v == 0 {
		return 0
	}
	idx := bits.Len64(v)
	if idx > histNumBuckets-1 {
		idx = histNumBuckets - 1
	}
	return idx
}

// bucketBound returns the upper bound of finite bucket i in seconds.
func bucketBound(i int) float64 {
	return float64(uint64(1)<<(histMinShift+i)) / 1e9
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	ns := int64(d)
	h.buckets[bucketIndex(ns)].Add(1)
	if ns > 0 {
		h.sumNs.Add(uint64(ns))
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.buckets {
		n += h.buckets[i].Load()
	}
	return n
}

// SumSeconds returns the sum of all observed durations in seconds.
func (h *Histogram) SumSeconds() float64 {
	return float64(h.sumNs.Load()) / 1e9
}

// snapshot copies the bucket counts; scrapes and quantile reads work
// from the copy so a torn read across buckets can at worst lag a few
// concurrent observations, never corrupt the cumulative invariant
// (each bucket is summed exactly once).
func (h *Histogram) snapshot() (b [histNumBuckets]uint64, total uint64) {
	for i := range h.buckets {
		b[i] = h.buckets[i].Load()
		total += b[i]
	}
	return b, total
}

// Quantile returns the q-quantile (0 < q ≤ 1) in seconds, by
// cumulative walk with linear interpolation inside the landing
// bucket. With power-of-two buckets the answer is exact to within
// the bucket width. Returns 0 when the histogram is empty.
func (h *Histogram) Quantile(q float64) float64 {
	b, total := h.snapshot()
	if total == 0 {
		return 0
	}
	target := q * float64(total)
	if target < 1 {
		target = 1
	}
	var cum float64
	for i := 0; i < histNumBuckets; i++ {
		if b[i] == 0 {
			continue
		}
		prev := cum
		cum += float64(b[i])
		if cum < target {
			continue
		}
		lo := 0.0
		if i > 0 {
			lo = bucketBound(i - 1)
		}
		hi := bucketBound(i)
		if i == histNumBuckets-1 {
			// Overflow bucket has no finite upper bound; report its
			// lower edge rather than inventing one.
			return lo
		}
		frac := (target - prev) / float64(b[i])
		return lo + frac*(hi-lo)
	}
	return bucketBound(histNumFinite - 1)
}

// metricKind discriminates families for TYPE lines and rendering.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// series is one labeled instance within a family; exactly one of the
// three pointers is set, matching the family kind.
type series struct {
	labelValue string
	counter    *Counter
	gauge      *Gauge
	hist       *Histogram
}

// family is one named metric with an optional single label
// dimension.
type family struct {
	name  string
	help  string
	kind  metricKind
	label string // "" for unlabeled families

	mu     sync.Mutex
	series map[string]*series
}

func (f *family) get(labelValue string) *series {
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.series[labelValue]; ok {
		return s
	}
	// At the cap, new label values collapse into the overflow series;
	// the slot for it is reserved so the family never exceeds
	// MaxSeries total.
	if len(f.series) >= MaxSeries-1 {
		labelValue = overflowLabel
		if s, ok := f.series[labelValue]; ok {
			return s
		}
	}
	s := &series{labelValue: labelValue}
	switch f.kind {
	case kindCounter:
		s.counter = &Counter{}
	case kindGauge:
		s.gauge = &Gauge{}
	case kindHistogram:
		s.hist = &Histogram{}
	}
	f.series[labelValue] = s
	return s
}

// sorted returns the family's series in sorted label order, so the
// exposition is deterministic.
func (f *family) sorted() []*series {
	f.mu.Lock()
	out := make([]*series, 0, len(f.series))
	for _, s := range f.series {
		out = append(out, s)
	}
	f.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].labelValue < out[j].labelValue })
	return out
}

// A Registry owns an ordered set of metric families plus scrape-time
// collectors. All registration methods panic on a name conflict —
// metric registration is program structure, not runtime input.
type Registry struct {
	mu         sync.Mutex
	families   []*family
	byName     map[string]*family
	collectors []func()
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

func (r *Registry) register(name, help string, kind metricKind, label string) *family {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	if label != "" && !validName(label) {
		panic(fmt.Sprintf("obs: invalid label name %q", label))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[name]; dup {
		panic(fmt.Sprintf("obs: metric %q registered twice", name))
	}
	f := &family{name: name, help: help, kind: kind, label: label, series: make(map[string]*series)}
	r.families = append(r.families, f)
	r.byName[name] = f
	return f
}

// Counter registers an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.register(name, help, kindCounter, "").get("").counter
}

// Gauge registers an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.register(name, help, kindGauge, "").get("").gauge
}

// Histogram registers an unlabeled histogram.
func (r *Registry) Histogram(name, help string) *Histogram {
	return r.register(name, help, kindHistogram, "").get("").hist
}

// CounterVec is a counter family with one label dimension.
type CounterVec struct{ f *family }

// CounterVec registers a labeled counter family.
func (r *Registry) CounterVec(name, help, label string) *CounterVec {
	return &CounterVec{r.register(name, help, kindCounter, label)}
}

// With returns the counter for the given label value, creating it on
// first use (subject to the MaxSeries cap).
func (v *CounterVec) With(labelValue string) *Counter { return v.f.get(labelValue).counter }

// GaugeVec is a gauge family with one label dimension.
type GaugeVec struct{ f *family }

// GaugeVec registers a labeled gauge family.
func (r *Registry) GaugeVec(name, help, label string) *GaugeVec {
	return &GaugeVec{r.register(name, help, kindGauge, label)}
}

// With returns the gauge for the given label value.
func (v *GaugeVec) With(labelValue string) *Gauge { return v.f.get(labelValue).gauge }

// HistogramVec is a histogram family with one label dimension.
type HistogramVec struct{ f *family }

// HistogramVec registers a labeled histogram family.
func (r *Registry) HistogramVec(name, help, label string) *HistogramVec {
	return &HistogramVec{r.register(name, help, kindHistogram, label)}
}

// With returns the histogram for the given label value.
func (v *HistogramVec) With(labelValue string) *Histogram { return v.f.get(labelValue).hist }

// OnScrape registers a collector: a function run at the top of every
// scrape, before rendering. Collectors mirror externally-maintained
// totals (pool stats, solver stats, cluster counters) into registry
// metrics, so hot paths keep their existing single atomic increment
// and the registry pays the copying cost only when someone looks.
func (r *Registry) OnScrape(f func()) {
	r.mu.Lock()
	r.collectors = append(r.collectors, f)
	r.mu.Unlock()
}

func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
