package core

import (
	"math"
	"sort"
)

// MixedSolution is the optimum of the full (α, β) formulation of
// linear program (7) with the β integrality relaxed, optionally under
// additional per-route bounds lb ≤ β_{k,l} ≤ ub. It is the node
// relaxation used by the exact branch-and-bound solver.
type MixedSolution struct {
	Alpha     [][]float64
	Beta      map[Pair]float64 // relaxed connection counts for remote backbone routes
	Objective float64
}

// BetaBounds carries branch-and-bound bounds for one route's β
// variable. Ub < 0 means unbounded above.
type BetaBounds struct {
	Lb float64
	Ub float64
}

// MixedRelaxed solves the explicit (α, β) rational relaxation of
// program (7). Unlike Relaxed, the β variables appear explicitly so
// callers can impose branching bounds. Routes that cross no backbone
// link get no β variable (they are constrained only by gateways; see
// CheckAllocation). Returns ok=false on infeasibility.
//
// This is the one-shot convenience wrapper over Model: it builds a
// fresh Model, applies the bounds and cold-solves once. Callers that
// re-solve under shifting bounds (branch-and-bound, LPRR) should hold
// a Model and use its warm-started Solve instead.
//
// Tests assert that with no bounds this agrees with Relaxed, which is
// the β-elimination argument of DESIGN.md made executable.
func (pr *Problem) MixedRelaxed(obj Objective, bounds map[Pair]BetaBounds) (*MixedSolution, bool, error) {
	m, err := pr.NewModel(obj)
	if err != nil {
		return nil, false, err
	}
	for p, b := range bounds {
		if err := m.SetBounds(p, b); err != nil {
			return nil, false, err
		}
	}
	sol, _, ok, err := m.Solve(nil)
	return sol, ok, err
}

// RemoteRoutes lists every ordered pair (k,l), k≠l, whose route
// exists and crosses at least one backbone link — exactly the routes
// that carry a β variable. The order is deterministic (row-major).
func (pr *Problem) RemoteRoutes() []Pair {
	var out []Pair
	K := pr.K()
	for k := 0; k < K; k++ {
		for l := 0; l < K; l++ {
			if k == l {
				continue
			}
			rt := pr.Platform.Route(k, l)
			if rt.Exists && len(rt.Links) > 0 {
				out = append(out, Pair{k, l})
			}
		}
	}
	return out
}

// MostFractional returns the β route whose relaxed value is farthest
// from an integer (ties broken deterministically by pair order), or
// ok=false when every β is integral within tol — the branch selection
// rule of the exact solver.
func (m *MixedSolution) MostFractional(tol float64) (Pair, bool) {
	bestFrac := tol
	var bestPair Pair
	found := false
	pairs := make([]Pair, 0, len(m.Beta))
	for p := range m.Beta {
		pairs = append(pairs, p)
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].K != pairs[j].K {
			return pairs[i].K < pairs[j].K
		}
		return pairs[i].L < pairs[j].L
	})
	for _, p := range pairs {
		v := m.Beta[p]
		frac := math.Abs(v - math.Round(v))
		if frac > bestFrac {
			bestFrac = frac
			bestPair = p
			found = true
		}
	}
	return bestPair, found
}
