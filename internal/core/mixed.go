package core

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/lp"
)

// MixedSolution is the optimum of the full (α, β) formulation of
// linear program (7) with the β integrality relaxed, optionally under
// additional per-route bounds lb ≤ β_{k,l} ≤ ub. It is the node
// relaxation used by the exact branch-and-bound solver.
type MixedSolution struct {
	Alpha     [][]float64
	Beta      map[Pair]float64 // relaxed connection counts for remote backbone routes
	Objective float64
}

// BetaBounds carries branch-and-bound bounds for one route's β
// variable. Ub < 0 means unbounded above.
type BetaBounds struct {
	Lb float64
	Ub float64
}

// MixedRelaxed solves the explicit (α, β) rational relaxation of
// program (7). Unlike Relaxed, the β variables appear explicitly so
// callers can impose branching bounds. Routes that cross no backbone
// link get no β variable (they are constrained only by gateways; see
// CheckAllocation). Returns ok=false on infeasibility.
//
// Tests assert that with no bounds this agrees with Relaxed, which is
// the β-elimination argument of DESIGN.md made executable.
func (pr *Problem) MixedRelaxed(obj Objective, bounds map[Pair]BetaBounds) (*MixedSolution, bool, error) {
	if err := pr.Validate(); err != nil {
		return nil, false, err
	}
	K := pr.K()
	pl := pr.Platform

	alphaIdx := make(map[Pair]int)
	betaIdx := make(map[Pair]int)
	var order []Pair
	for k := 0; k < K; k++ {
		for l := 0; l < K; l++ {
			if k != l && !pl.Route(k, l).Exists {
				continue
			}
			order = append(order, Pair{k, l})
		}
	}
	n := 0
	for _, p := range order {
		alphaIdx[p] = n
		n++
	}
	for _, p := range order {
		if p.K == p.L {
			continue
		}
		rt := pl.Route(p.K, p.L)
		if len(rt.Links) == 0 {
			continue // same-router: no backbone crossing, no β
		}
		betaIdx[p] = n
		n++
	}
	for p := range bounds {
		if _, ok := betaIdx[p]; !ok {
			return nil, false, fmt.Errorf("core: β bounds on route (%d,%d) with no β variable", p.K, p.L)
		}
	}
	tVar := -1
	if obj == MAXMIN {
		tVar = n
		n++
	}
	prob := lp.New(n)

	switch obj {
	case SUM:
		for p, idx := range alphaIdx {
			prob.SetObjective(idx, pr.Payoffs[p.K])
		}
	case MAXMIN:
		prob.SetObjective(tVar, 1)
		any := false
		for k := 0; k < K; k++ {
			if pr.Payoffs[k] <= 0 {
				continue
			}
			any = true
			terms := []lp.Term{{Var: tVar, Coeff: 1}}
			for l := 0; l < K; l++ {
				if idx, ok := alphaIdx[Pair{k, l}]; ok {
					terms = append(terms, lp.Term{Var: idx, Coeff: -pr.Payoffs[k]})
				}
			}
			prob.AddConstraint(terms, lp.LE, 0)
		}
		if !any {
			return nil, false, fmt.Errorf("core: MAXMIN objective with no positive payoff")
		}
	default:
		return nil, false, fmt.Errorf("core: unknown objective %v", obj)
	}

	// (7b) speed.
	for l := 0; l < K; l++ {
		var terms []lp.Term
		for k := 0; k < K; k++ {
			if idx, ok := alphaIdx[Pair{k, l}]; ok {
				terms = append(terms, lp.Term{Var: idx, Coeff: 1})
			}
		}
		if len(terms) > 0 {
			prob.AddConstraint(terms, lp.LE, pl.Clusters[l].Speed)
		}
	}
	// (7c) gateways.
	for k := 0; k < K; k++ {
		var terms []lp.Term
		for l := 0; l < K; l++ {
			if l == k {
				continue
			}
			if idx, ok := alphaIdx[Pair{k, l}]; ok {
				terms = append(terms, lp.Term{Var: idx, Coeff: 1})
			}
			if idx, ok := alphaIdx[Pair{l, k}]; ok {
				terms = append(terms, lp.Term{Var: idx, Coeff: 1})
			}
		}
		if len(terms) > 0 {
			prob.AddConstraint(terms, lp.LE, pl.Clusters[k].Gateway)
		}
	}
	// (7d) per-link connection budgets over β.
	linkUse := make([][]lp.Term, len(pl.Links))
	for p, bIdx := range betaIdx {
		rt := pl.Route(p.K, p.L)
		for _, li := range rt.Links {
			linkUse[li] = append(linkUse[li], lp.Term{Var: bIdx, Coeff: 1})
		}
	}
	for li := range pl.Links {
		if len(linkUse[li]) > 0 {
			prob.AddConstraint(linkUse[li], lp.LE, float64(pl.Links[li].MaxConnect))
		}
	}
	// (7e) α_{k,l} − β_{k,l}·bw_min ≤ 0.
	for p, bIdx := range betaIdx {
		bw := pl.Route(p.K, p.L).MinBW
		prob.AddConstraint([]lp.Term{
			{Var: alphaIdx[p], Coeff: 1},
			{Var: bIdx, Coeff: -bw},
		}, lp.LE, 0)
	}
	// Branching bounds.
	for p, b := range bounds {
		idx := betaIdx[p]
		if b.Lb > 0 {
			prob.AddConstraint([]lp.Term{{Var: idx, Coeff: 1}}, lp.GE, b.Lb)
		}
		if b.Ub >= 0 {
			prob.AddConstraint([]lp.Term{{Var: idx, Coeff: 1}}, lp.LE, b.Ub)
		}
	}

	sol, err := prob.Solve()
	if err != nil {
		return nil, false, err
	}
	switch sol.Status {
	case lp.Infeasible:
		return nil, false, nil
	case lp.Unbounded:
		return nil, false, fmt.Errorf("core: mixed relaxation unbounded (model bug)")
	}

	out := &MixedSolution{Objective: sol.Objective, Beta: make(map[Pair]float64, len(betaIdx))}
	out.Alpha = make([][]float64, K)
	for k := 0; k < K; k++ {
		out.Alpha[k] = make([]float64, K)
	}
	for p, idx := range alphaIdx {
		v := sol.X[idx]
		if v < 0 {
			v = 0
		}
		out.Alpha[p.K][p.L] = v
	}
	for p, idx := range betaIdx {
		v := sol.X[idx]
		if v < 0 {
			v = 0
		}
		out.Beta[p] = v
	}
	return out, true, nil
}

// RemoteRoutes lists every ordered pair (k,l), k≠l, whose route
// exists and crosses at least one backbone link — exactly the routes
// that carry a β variable. The order is deterministic (row-major).
func (pr *Problem) RemoteRoutes() []Pair {
	var out []Pair
	K := pr.K()
	for k := 0; k < K; k++ {
		for l := 0; l < K; l++ {
			if k == l {
				continue
			}
			rt := pr.Platform.Route(k, l)
			if rt.Exists && len(rt.Links) > 0 {
				out = append(out, Pair{k, l})
			}
		}
	}
	return out
}

// MostFractional returns the β route whose relaxed value is farthest
// from an integer (ties broken deterministically by pair order), or
// ok=false when every β is integral within tol — the branch selection
// rule of the exact solver.
func (m *MixedSolution) MostFractional(tol float64) (Pair, bool) {
	bestFrac := tol
	var bestPair Pair
	found := false
	pairs := make([]Pair, 0, len(m.Beta))
	for p := range m.Beta {
		pairs = append(pairs, p)
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].K != pairs[j].K {
			return pairs[i].K < pairs[j].K
		}
		return pairs[i].L < pairs[j].L
	})
	for _, p := range pairs {
		v := m.Beta[p]
		frac := math.Abs(v - math.Round(v))
		if frac > bestFrac {
			bestFrac = frac
			bestPair = p
			found = true
		}
	}
	return bestPair, found
}
