package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/platform"
	"repro/internal/platgen"
)

// twoClusters builds a minimal platform: two clusters on routers 0,1
// joined by one backbone link.
func twoClusters(speed0, speed1, g0, g1, bw float64, maxcon int) *platform.Platform {
	p := &platform.Platform{
		Routers: 2,
		Links:   []platform.Link{{U: 0, V: 1, BW: bw, MaxConnect: maxcon}},
		Clusters: []platform.Cluster{
			{Name: "C0", Speed: speed0, Gateway: g0, Router: 0},
			{Name: "C1", Speed: speed1, Gateway: g1, Router: 1},
		},
	}
	if err := p.ComputeRoutes(); err != nil {
		panic(err)
	}
	return p
}

func randomProblem(seed int64, maxK int) *Problem {
	rng := rand.New(rand.NewSource(seed))
	params := platgen.Params{
		K:             2 + rng.Intn(maxK-1),
		Connectivity:  0.2 + 0.6*rng.Float64(),
		Heterogeneity: 0.2 + 0.6*rng.Float64(),
		MeanG:         50 + 400*rng.Float64(),
		MeanBW:        10 + 80*rng.Float64(),
		MeanMaxCon:    5 + 30*rng.Float64(),
	}
	pl, err := platgen.Generate(params, rng)
	if err != nil {
		panic(err)
	}
	return NewProblem(pl)
}

func TestNewProblemUnitPayoffs(t *testing.T) {
	pr := NewProblem(twoClusters(100, 100, 50, 50, 10, 3))
	if len(pr.Payoffs) != 2 || pr.Payoffs[0] != 1 || pr.Payoffs[1] != 1 {
		t.Fatalf("payoffs = %v", pr.Payoffs)
	}
	if err := pr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateErrors(t *testing.T) {
	if err := (&Problem{}).Validate(); err == nil {
		t.Fatal("nil platform must fail")
	}
	pr := NewProblem(twoClusters(100, 100, 50, 50, 10, 3))
	pr.Payoffs = []float64{1}
	if err := pr.Validate(); err == nil {
		t.Fatal("payoff length mismatch must fail")
	}
	pr = NewProblem(twoClusters(100, 100, 50, 50, 10, 3))
	pr.Payoffs[0] = -1
	if err := pr.Validate(); err == nil {
		t.Fatal("negative payoff must fail")
	}
	pr.Payoffs[0] = math.NaN()
	if err := pr.Validate(); err == nil {
		t.Fatal("NaN payoff must fail")
	}
}

func TestObjectiveValues(t *testing.T) {
	pr := NewProblem(twoClusters(100, 100, 50, 50, 10, 3))
	pr.Payoffs = []float64{2, 1}
	a := NewAllocation(2)
	a.Alpha[0][0] = 3 // α_0 = 3+1 = 4
	a.Alpha[0][1] = 1
	a.Alpha[1][1] = 6 // α_1 = 6
	if got := pr.Objective(SUM, a); got != 2*4+1*6 {
		t.Fatalf("SUM = %g", got)
	}
	if got := pr.Objective(MAXMIN, a); got != 6 { // min(2*4, 1*6)
		t.Fatalf("MAXMIN = %g", got)
	}
	// Zero payoffs are excluded from MAXMIN.
	pr.Payoffs = []float64{0, 1}
	if got := pr.Objective(MAXMIN, a); got != 6 {
		t.Fatalf("MAXMIN with zero payoff = %g", got)
	}
	pr.Payoffs = []float64{0, 0}
	if got := pr.Objective(MAXMIN, a); got != 0 {
		t.Fatalf("MAXMIN with all-zero payoffs = %g", got)
	}
}

func TestObjectiveStrings(t *testing.T) {
	if SUM.String() != "SUM" || MAXMIN.String() != "MAXMIN" {
		t.Fatal("objective names wrong")
	}
	if Objective(9).String() == "" {
		t.Fatal("unknown objective must format")
	}
}

func TestZeroAllocationAlwaysValid(t *testing.T) {
	pr := NewProblem(twoClusters(100, 100, 50, 50, 10, 3))
	if err := pr.CheckAllocation(NewAllocation(2), DefaultTol); err != nil {
		t.Fatal(err)
	}
}

func TestCheckAllocationViolations(t *testing.T) {
	mk := func() (*Problem, *Allocation) {
		pr := NewProblem(twoClusters(100, 100, 50, 50, 10, 3))
		return pr, NewAllocation(2)
	}
	t.Run("speed 7b", func(t *testing.T) {
		pr, a := mk()
		a.Alpha[0][0] = 150
		if err := pr.CheckAllocation(a, DefaultTol); err == nil {
			t.Fatal("overloaded cluster must fail 7b")
		}
	})
	t.Run("gateway 7c", func(t *testing.T) {
		pr, a := mk()
		a.Alpha[0][1] = 60 // exceeds gateway 50 even with enough β
		a.Beta[0][1] = 6
		if err := pr.CheckAllocation(a, DefaultTol); err == nil {
			t.Fatal("gateway overflow must fail 7c")
		}
	})
	t.Run("connections 7d", func(t *testing.T) {
		pr, a := mk()
		a.Beta[0][1] = 4 // maxConnect is 3
		if err := pr.CheckAllocation(a, DefaultTol); err == nil {
			t.Fatal("too many connections must fail 7d")
		}
	})
	t.Run("bandwidth 7e", func(t *testing.T) {
		pr, a := mk()
		a.Alpha[0][1] = 25 // 2 connections * bw 10 = 20 < 25
		a.Beta[0][1] = 2
		if err := pr.CheckAllocation(a, DefaultTol); err == nil {
			t.Fatal("route bandwidth overflow must fail 7e")
		}
	})
	t.Run("negative alpha 7f", func(t *testing.T) {
		pr, a := mk()
		a.Alpha[0][1] = -1
		if err := pr.CheckAllocation(a, DefaultTol); err == nil {
			t.Fatal("negative alpha must fail")
		}
	})
	t.Run("negative beta 7g", func(t *testing.T) {
		pr, a := mk()
		a.Beta[0][1] = -1
		if err := pr.CheckAllocation(a, DefaultTol); err == nil {
			t.Fatal("negative beta must fail")
		}
	})
	t.Run("diagonal beta", func(t *testing.T) {
		pr, a := mk()
		a.Beta[0][0] = 1
		if err := pr.CheckAllocation(a, DefaultTol); err == nil {
			t.Fatal("diagonal beta must fail")
		}
	})
	t.Run("valid remote", func(t *testing.T) {
		pr, a := mk()
		a.Alpha[0][1] = 20
		a.Beta[0][1] = 2
		a.Alpha[0][0] = 80
		if err := pr.CheckAllocation(a, DefaultTol); err != nil {
			t.Fatal(err)
		}
	})
}

func TestCheckAllocationNoRoute(t *testing.T) {
	// Disconnected clusters: any remote α must be rejected.
	p := &platform.Platform{
		Routers: 2,
		Clusters: []platform.Cluster{
			{Name: "a", Speed: 10, Gateway: 10, Router: 0},
			{Name: "b", Speed: 10, Gateway: 10, Router: 1},
		},
	}
	if err := p.ComputeRoutes(); err != nil {
		t.Fatal(err)
	}
	pr := NewProblem(p)
	a := NewAllocation(2)
	a.Alpha[0][1] = 1
	if err := pr.CheckAllocation(a, DefaultTol); err == nil {
		t.Fatal("alpha across missing route must fail")
	}
}

func TestRelaxedTwoClusterSUM(t *testing.T) {
	// Two clusters, speeds 100 each, gateways 50, one link bw 10 and
	// maxcon 3. SUM optimum: each runs its own work locally at full
	// speed (100+100); remote shipping cannot add anything (speeds
	// saturated), so SUM = 200.
	pr := NewProblem(twoClusters(100, 100, 50, 50, 10, 3))
	sol, ok, err := pr.Relaxed(SUM, nil)
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if math.Abs(sol.Objective-200) > 1e-6 {
		t.Fatalf("SUM objective = %g, want 200", sol.Objective)
	}
}

func TestRelaxedAsymmetric(t *testing.T) {
	// Cluster 0 has speed 0 (pure source), cluster 1 speed 100.
	// Route bw 10 with maxcon 3 => at most 30 across backbone,
	// gateways 50 each. App 0 can ship min(30, 50, 100) = 30.
	pr := NewProblem(twoClusters(0, 100, 50, 50, 10, 3))
	pr.Payoffs = []float64{1, 0}
	sol, ok, err := pr.Relaxed(SUM, nil)
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if math.Abs(sol.Objective-30) > 1e-6 {
		t.Fatalf("objective = %g, want 30", sol.Objective)
	}
	if math.Abs(sol.Alpha[0][1]-30) > 1e-6 {
		t.Fatalf("α_{0,1} = %g, want 30", sol.Alpha[0][1])
	}
	if math.Abs(sol.BetaFrac[0][1]-3) > 1e-6 {
		t.Fatalf("β̃_{0,1} = %g, want 3", sol.BetaFrac[0][1])
	}
}

func TestRelaxedMAXMINFairness(t *testing.T) {
	// Symmetric two-cluster platform with equal payoffs: MAXMIN
	// optimum gives both apps their local speed: min = 100.
	pr := NewProblem(twoClusters(100, 100, 50, 50, 10, 3))
	sol, ok, err := pr.Relaxed(MAXMIN, nil)
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if math.Abs(sol.Objective-100) > 1e-5 {
		t.Fatalf("MAXMIN objective = %g, want 100", sol.Objective)
	}
}

func TestRelaxedMAXMINPayoffWeighting(t *testing.T) {
	// Same platform, payoffs (2,1). MAXMIN maximizes min(2α_0, α_1).
	// App 1 runs 100 locally and ships 30 across the backbone
	// (3 connections x bw 10) into cluster 0's spare speed, while app
	// 0 computes 65 locally: min(2*65, 130) = 130.
	pr := NewProblem(twoClusters(100, 100, 50, 50, 10, 3))
	pr.Payoffs = []float64{2, 1}
	sol, ok, err := pr.Relaxed(MAXMIN, nil)
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if math.Abs(sol.Objective-130) > 1e-5 {
		t.Fatalf("MAXMIN objective = %g, want 130", sol.Objective)
	}
}

func TestRelaxedMAXMINNeedsPositivePayoff(t *testing.T) {
	pr := NewProblem(twoClusters(100, 100, 50, 50, 10, 3))
	pr.Payoffs = []float64{0, 0}
	if _, _, err := pr.Relaxed(MAXMIN, nil); err == nil {
		t.Fatal("MAXMIN with all-zero payoffs must error")
	}
}

func TestRelaxedWithFixedBeta(t *testing.T) {
	// Pin β_{0,1} = 1: app 0 can ship at most bw 10 even though the
	// relaxation would use 3 connections.
	pr := NewProblem(twoClusters(0, 100, 50, 50, 10, 3))
	pr.Payoffs = []float64{1, 0}
	sol, ok, err := pr.Relaxed(SUM, map[Pair]int{{0, 1}: 1})
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if math.Abs(sol.Objective-10) > 1e-6 {
		t.Fatalf("objective = %g, want 10", sol.Objective)
	}
	if sol.BetaFrac[0][1] != 1 {
		t.Fatalf("pinned β̃ = %g", sol.BetaFrac[0][1])
	}
}

func TestRelaxedFixedBetaOverBudgetInfeasible(t *testing.T) {
	pr := NewProblem(twoClusters(0, 100, 50, 50, 10, 3))
	_, ok, err := pr.Relaxed(SUM, map[Pair]int{{0, 1}: 4}) // maxcon 3
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("pinning 4 connections on a 3-connection link must be infeasible")
	}
}

func TestRelaxedFixedBetaBadRoute(t *testing.T) {
	pr := NewProblem(twoClusters(0, 100, 50, 50, 10, 3))
	if _, _, err := pr.Relaxed(SUM, map[Pair]int{{1, 1}: 1}); err == nil {
		t.Fatal("pinning a diagonal/nonexistent route must error")
	}
	if _, _, err := pr.Relaxed(SUM, map[Pair]int{{0, 1}: -1}); err == nil {
		t.Fatal("negative pin must error")
	}
}

func TestMixedRelaxedAgreesWithReduced(t *testing.T) {
	// The β-elimination argument: with no branching bounds the full
	// (α,β) relaxation and the reduced α-space relaxation have the
	// same optimum, on random platforms and both objectives.
	for seed := int64(0); seed < 12; seed++ {
		pr := randomProblem(seed, 8)
		for _, obj := range []Objective{SUM, MAXMIN} {
			red, ok1, err1 := pr.Relaxed(obj, nil)
			mix, ok2, err2 := pr.MixedRelaxed(obj, nil)
			if err1 != nil || err2 != nil || !ok1 || !ok2 {
				t.Fatalf("seed %d %v: ok=(%v,%v) err=(%v,%v)", seed, obj, ok1, ok2, err1, err2)
			}
			tol := 1e-5 * (1 + math.Abs(red.Objective))
			if math.Abs(red.Objective-mix.Objective) > tol {
				t.Fatalf("seed %d %v: reduced %g vs mixed %g", seed, obj, red.Objective, mix.Objective)
			}
		}
	}
}

func TestMixedRelaxedBoundsBind(t *testing.T) {
	pr := NewProblem(twoClusters(0, 100, 50, 50, 10, 3))
	pr.Payoffs = []float64{1, 0}
	sol, ok, err := pr.MixedRelaxed(SUM, map[Pair]BetaBounds{{0, 1}: {Lb: 0, Ub: 2}})
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if math.Abs(sol.Objective-20) > 1e-6 {
		t.Fatalf("objective with β≤2 = %g, want 20", sol.Objective)
	}
	// Lower bound alone must not change the optimum (β=3 is optimal).
	sol2, ok, err := pr.MixedRelaxed(SUM, map[Pair]BetaBounds{{0, 1}: {Lb: 2, Ub: -1}})
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if math.Abs(sol2.Objective-30) > 1e-6 {
		t.Fatalf("objective with β≥2 = %g, want 30", sol2.Objective)
	}
}

func TestMixedRelaxedBadBounds(t *testing.T) {
	pr := NewProblem(twoClusters(0, 100, 50, 50, 10, 3))
	if _, _, err := pr.MixedRelaxed(SUM, map[Pair]BetaBounds{{0, 0}: {}}); err == nil {
		t.Fatal("bounds on a route without β variable must error")
	}
}

func TestMostFractional(t *testing.T) {
	m := &MixedSolution{Beta: map[Pair]float64{
		{0, 1}: 2.0,
		{1, 0}: 1.4,
		{1, 2}: 0.5,
	}}
	p, ok := m.MostFractional(1e-6)
	if !ok || p != (Pair{1, 2}) {
		t.Fatalf("got %v ok=%v, want {1 2}", p, ok)
	}
	m.Beta = map[Pair]float64{{0, 1}: 3.0000000001}
	if _, ok := m.MostFractional(1e-6); ok {
		t.Fatal("near-integral β must report none")
	}
}

func TestRemoteRoutes(t *testing.T) {
	pr := NewProblem(twoClusters(100, 100, 50, 50, 10, 3))
	rr := pr.RemoteRoutes()
	if len(rr) != 2 || rr[0] != (Pair{0, 1}) || rr[1] != (Pair{1, 0}) {
		t.Fatalf("remote routes = %v", rr)
	}
}

func TestCloneAllocation(t *testing.T) {
	a := NewAllocation(2)
	a.Alpha[0][1] = 5
	a.Beta[0][1] = 1
	b := a.Clone()
	b.Alpha[0][1] = 9
	b.Beta[0][1] = 3
	if a.Alpha[0][1] != 5 || a.Beta[0][1] != 1 {
		t.Fatal("clone shares storage")
	}
}

// TestPropertyRelaxedSolutionSatisfiesRelaxedConstraints: the LP
// solution, interpreted with fractional β, satisfies 7b/7c and per
// link Σ β̃ ≤ maxcon on random platforms.
func TestPropertyRelaxedSolutionSatisfiesRelaxedConstraints(t *testing.T) {
	prop := func(seed int64) bool {
		pr := randomProblem(seed, 8)
		sol, ok, err := pr.Relaxed(SUM, nil)
		if err != nil || !ok {
			return false
		}
		pl := pr.Platform
		K := pr.K()
		// 7b
		for l := 0; l < K; l++ {
			in := 0.0
			for k := 0; k < K; k++ {
				in += sol.Alpha[k][l]
			}
			if in > pl.Clusters[l].Speed*(1+1e-6)+1e-6 {
				return false
			}
		}
		// 7c
		for k := 0; k < K; k++ {
			tr := 0.0
			for l := 0; l < K; l++ {
				if l != k {
					tr += sol.Alpha[k][l] + sol.Alpha[l][k]
				}
			}
			if tr > pl.Clusters[k].Gateway*(1+1e-6)+1e-6 {
				return false
			}
		}
		// 7d with fractional β
		use := make([]float64, len(pl.Links))
		for k := 0; k < K; k++ {
			for l := 0; l < K; l++ {
				if k == l || sol.BetaFrac[k][l] == 0 {
					continue
				}
				for _, li := range pl.Route(k, l).Links {
					use[li] += sol.BetaFrac[k][l]
				}
			}
		}
		for li, u := range use {
			if u > float64(pl.Links[li].MaxConnect)*(1+1e-6)+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyMAXMINLeqSUM: for unit payoffs, K·MAXMIN <= SUM at
// their respective optima (the min cannot beat the mean).
func TestPropertyMAXMINLeqSUM(t *testing.T) {
	prop := func(seed int64) bool {
		pr := randomProblem(seed, 7)
		mm, ok1, err1 := pr.Relaxed(MAXMIN, nil)
		sm, ok2, err2 := pr.Relaxed(SUM, nil)
		if err1 != nil || err2 != nil || !ok1 || !ok2 {
			return false
		}
		return float64(pr.K())*mm.Objective <= sm.Objective*(1+1e-6)+1e-6
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkRelaxedSUMK15(b *testing.B) {
	pr := randomProblem(5, 15)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := pr.Relaxed(SUM, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRelaxedMAXMINK15(b *testing.B) {
	pr := randomProblem(5, 15)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := pr.Relaxed(MAXMIN, nil); err != nil {
			b.Fatal(err)
		}
	}
}
