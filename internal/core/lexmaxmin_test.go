package core

import (
	"math"
	"sort"
	"testing"

	"repro/internal/platform"
)

func TestLexMaxMinSymmetricEqualsMAXMIN(t *testing.T) {
	pr := NewProblem(twoClusters(100, 100, 50, 50, 10, 3))
	mm, ok, err := pr.Relaxed(MAXMIN, nil)
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	lex, err := pr.LexMaxMin()
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 2; k++ {
		if math.Abs(lex.Levels[k]-mm.Objective) > 1e-5 {
			t.Fatalf("level %d = %g, MAXMIN = %g", k, lex.Levels[k], mm.Objective)
		}
	}
}

func TestLexMaxMinRefinesMAXMIN(t *testing.T) {
	// Asymmetric: cluster 0 slow (30), cluster 1 fast (200), weak
	// interconnect. Plain MAXMIN pins everyone at the worst level;
	// lexicographic lets app 1 rise above it.
	pr := NewProblem(twoClusters(30, 200, 20, 20, 5, 1))
	mm, ok, err := pr.Relaxed(MAXMIN, nil)
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	lex, err := pr.LexMaxMin()
	if err != nil {
		t.Fatal(err)
	}
	minLevel := math.Min(lex.Levels[0], lex.Levels[1])
	if math.Abs(minLevel-mm.Objective) > 1e-5*(1+mm.Objective) {
		t.Fatalf("lex min level %g != MAXMIN %g", minLevel, mm.Objective)
	}
	if lex.Levels[1] <= mm.Objective+1 {
		t.Fatalf("lexicographic failed to refine: levels %v vs MAXMIN %g", lex.Levels, mm.Objective)
	}
	// The returned α must actually deliver the levels.
	for k := 0; k < 2; k++ {
		got := 0.0
		for _, v := range lex.Alpha[k] {
			got += v
		}
		if got*pr.Payoffs[k] < lex.Levels[k]-1e-5*(1+lex.Levels[k]) {
			t.Fatalf("app %d α sums to %g, level %g", k, got, lex.Levels[k])
		}
	}
}

func TestLexMaxMinZeroPayoffExcluded(t *testing.T) {
	pr := NewProblem(twoClusters(100, 100, 50, 50, 10, 3))
	pr.Payoffs = []float64{1, 0}
	lex, err := pr.LexMaxMin()
	if err != nil {
		t.Fatal(err)
	}
	if lex.Levels[1] != 0 {
		t.Fatalf("zero-payoff app has level %g", lex.Levels[1])
	}
	if lex.Levels[0] < 100 {
		t.Fatalf("app 0 level %g, want >= 100", lex.Levels[0])
	}
	pr.Payoffs = []float64{0, 0}
	if _, err := pr.LexMaxMin(); err == nil {
		t.Fatal("all-zero payoffs must error")
	}
}

func TestLexMaxMinThreeTier(t *testing.T) {
	// Three clusters on a line with decreasing speeds and a tight
	// middle: levels should be non-degenerate and sorted levels must
	// dominate the uniform MAXMIN vector.
	p := &platform.Platform{
		Routers: 3,
		Links: []platform.Link{
			{U: 0, V: 1, BW: 5, MaxConnect: 2},
			{U: 1, V: 2, BW: 5, MaxConnect: 2},
		},
		Clusters: []platform.Cluster{
			{Name: "a", Speed: 20, Gateway: 15, Router: 0},
			{Name: "b", Speed: 80, Gateway: 15, Router: 1},
			{Name: "c", Speed: 300, Gateway: 15, Router: 2},
		},
	}
	if err := p.ComputeRoutes(); err != nil {
		t.Fatal(err)
	}
	pr := NewProblem(p)
	mm, ok, err := pr.Relaxed(MAXMIN, nil)
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	lex, err := pr.LexMaxMin()
	if err != nil {
		t.Fatal(err)
	}
	lv := append([]float64(nil), lex.Levels...)
	sort.Float64s(lv)
	if math.Abs(lv[0]-mm.Objective) > 1e-5*(1+mm.Objective) {
		t.Fatalf("smallest lex level %g != MAXMIN %g", lv[0], mm.Objective)
	}
	for i := 1; i < len(lv); i++ {
		if lv[i] < lv[i-1]-1e-9 {
			t.Fatal("levels not sorted after sorting?!")
		}
	}
	// The largest level must exceed the smallest (the platform is
	// heterogeneous enough that uniform levels are suboptimal).
	if lv[2] <= lv[0]+1 {
		t.Fatalf("lexicographic degenerated to uniform: %v", lv)
	}
}

func TestLexMaxMinRandomPlatformsConsistency(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		pr := randomProblem(seed, 6)
		mm, ok, err := pr.Relaxed(MAXMIN, nil)
		if err != nil || !ok {
			t.Fatalf("seed %d: ok=%v err=%v", seed, ok, err)
		}
		lex, err := pr.LexMaxMin()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		minLevel := math.Inf(1)
		for k, lv := range lex.Levels {
			if pr.Payoffs[k] > 0 && lv < minLevel {
				minLevel = lv
			}
		}
		if math.Abs(minLevel-mm.Objective) > 1e-4*(1+mm.Objective) {
			t.Fatalf("seed %d: lex min %g vs MAXMIN %g", seed, minLevel, mm.Objective)
		}
	}
}

func BenchmarkLexMaxMinK8(b *testing.B) {
	pr := randomProblem(3, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pr.LexMaxMin(); err != nil {
			b.Fatal(err)
		}
	}
}
