package core

import (
	"errors"

	"repro/internal/lp"
)

var errUnbounded = errors.New("core: mixed relaxation unbounded (model bug)")

// ModelView is a forked solve context over a Model: it answers what-if
// queries against the parent's warm basis without ever touching the
// parent. The view embeds a shallow copy of the parent whose mutable
// state — the LP problem (a private clone made by lp.Revised.Fork),
// the forked solver context, the link budgets and the per-route bound
// bookkeeping — is replaced by private copies, while the frozen index
// structures (route maps, row indices, the validated Problem) stay
// shared read-only. Every Model method is therefore available on a
// view and written exactly once: SetSpeed/SetGateway/SetLinkBudget/
// SetBounds mutate only the view's context, CaptureState/RestoreState
// snapshot and roll back the view's state with the same bookkeeping
// the parent uses, and SolveEphemeral warm-starts from the parent's
// basis with zero lost pivots.
//
// Views of one parent may solve concurrently with each other (and with
// the parent) — they share only read-only state. Create views while
// the parent is quiescent; a view is itself a valid parent for further
// ForkView calls once it has solved.
type ModelView struct {
	Model
}

// ForkView returns a new view of the model in O(rows + nonzeros) —
// no pivots, no refactorization. The receiver must have solved at
// least once (the fork continues from its live factorized basis).
func (m *Model) ForkView() (*ModelView, error) {
	frev, err := m.rev.Fork()
	if err != nil {
		return nil, err
	}
	v := &ModelView{Model: *m}
	v.Model.rev = frev
	v.Model.prob = frev.Problem()
	v.Model.natural = append([]float64(nil), m.natural...)
	v.Model.curLb = append([]float64(nil), m.curLb...)
	v.Model.curUb = append([]float64(nil), m.curUb...)
	v.Model.crossed = append([]bool(nil), m.crossed...)
	v.Model.budget = append([]float64(nil), m.budget...)
	return v, nil
}

// AbsorbSolverStats folds counters accumulated elsewhere — typically a
// view's solve activity after its batch completes — into this model's
// stats, so pool-wide aggregation sees work done on forked contexts.
func (m *Model) AbsorbSolverStats(s lp.Stats) { m.rev.AbsorbStats(s) }

// SolveBound is SolveEphemeral for callers that need only the verdict
// and the relaxation bound — the batched what-if path, whose reports
// carry no per-route α/β maps. It skips the MixedSolution extraction
// entirely: feasible=false reports an infeasible bound set (crossed
// box or simplex verdict), and err a solver failure or an unbounded
// relaxation (a model bug).
func (m *Model) SolveBound(from *lp.Basis) (bound float64, feasible bool, err error) {
	if m.numCrossed > 0 {
		return 0, false, nil
	}
	sol, err := m.rev.SolveEphemeral(from)
	if err != nil {
		return 0, false, err
	}
	switch sol.Status {
	case lp.Infeasible:
		return 0, false, nil
	case lp.Unbounded:
		return 0, false, errUnbounded
	}
	return sol.Objective, true, nil
}
