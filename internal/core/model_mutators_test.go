package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/platgen"
)

func mutatorProblem(t *testing.T, seed int64, k int) *Problem {
	t.Helper()
	params := platgen.Params{
		K:             k,
		Connectivity:  0.5,
		Heterogeneity: 0.4,
		MeanG:         120,
		MeanBW:        30,
		MeanMaxCon:    6,
	}
	pl, err := platgen.Generate(params, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return NewProblem(pl)
}

// TestModelCapacityMutatorsMatchRebuild: after SetSpeed/SetGateway/
// SetLinkBudget mutations, a warm re-solve of the persistent model
// must reach the same optimum as a model built fresh on an
// equivalently modified platform (LP optima are unique in value).
func TestModelCapacityMutatorsMatchRebuild(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		pr := mutatorProblem(t, seed, 6)
		for _, obj := range []Objective{SUM, MAXMIN} {
			m, err := pr.NewModel(obj)
			if err != nil {
				t.Fatal(err)
			}
			_, basis, ok, err := m.Solve(nil)
			if err != nil || !ok {
				t.Fatalf("nominal solve: ok=%v err=%v", ok, err)
			}
			rng := rand.New(rand.NewSource(seed * 101))
			for trial := 0; trial < 5; trial++ {
				pl2 := pr.Platform.Clone()
				for k := range pl2.Clusters {
					sf := 0.3 + 1.2*rng.Float64()
					gf := 0.3 + 1.2*rng.Float64()
					pl2.Clusters[k].Speed *= sf
					pl2.Clusters[k].Gateway *= gf
					if err := m.SetSpeed(k, pl2.Clusters[k].Speed); err != nil {
						t.Fatal(err)
					}
					if err := m.SetGateway(k, pl2.Clusters[k].Gateway); err != nil {
						t.Fatal(err)
					}
				}
				for li := range pl2.Links {
					// Shrink or grow budgets, including to zero.
					nb := rng.Intn(pl2.Links[li].MaxConnect + 3)
					pl2.Links[li].MaxConnect = nb
					if err := m.SetLinkBudget(li, float64(nb)); err != nil {
						t.Fatal(err)
					}
				}
				warm, nextBasis, ok, err := m.Solve(basis)
				if err != nil || !ok {
					t.Fatalf("warm solve: ok=%v err=%v", ok, err)
				}
				basis = nextBasis
				// Routes are hop-count shortest paths, independent of
				// capacities, so the rebuilt model is structure-identical.
				pr2 := &Problem{Platform: pl2, Payoffs: pr.Payoffs}
				cold, err := pr2.NewModel(obj)
				if err != nil {
					t.Fatal(err)
				}
				sol, _, ok, err := cold.Solve(nil)
				if err != nil || !ok {
					t.Fatalf("cold solve: ok=%v err=%v", ok, err)
				}
				if diff := math.Abs(warm.Objective - sol.Objective); diff > 1e-9*(1+math.Abs(sol.Objective)) {
					t.Fatalf("seed %d %v trial %d: warm %.12g != rebuild %.12g",
						seed, obj, trial, warm.Objective, sol.Objective)
				}
			}
		}
	}
}

// TestSetLinkBudgetRespectsExplicitBounds: lowering a link budget
// tightens the natural cap of routes crossing it without losing the
// caller's explicit SetBounds state, and restoring the budget
// restores the original effective bounds.
func TestSetLinkBudgetRespectsExplicitBounds(t *testing.T) {
	pr := mutatorProblem(t, 2, 5)
	m, err := pr.NewModel(SUM)
	if err != nil {
		t.Fatal(err)
	}
	routes := m.BetaVars()
	if len(routes) == 0 {
		t.Skip("platform has no backbone routes")
	}
	p := routes[0]
	// Pin the route to β = 1 explicitly.
	if err := m.SetBounds(p, BetaBounds{Lb: 1, Ub: 1}); err != nil {
		t.Fatal(err)
	}
	// Zero out one of its links: the pinned lower bound 1 with an
	// effective upper bound 0 must make the model infeasible.
	li := pr.Platform.Route(p.K, p.L).Links[0]
	orig := float64(pr.Platform.Links[li].MaxConnect)
	if err := m.SetLinkBudget(li, 0); err != nil {
		t.Fatal(err)
	}
	_, _, ok, err := m.Solve(nil)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("β pinned to 1 across a zero-budget link must be infeasible")
	}
	// Restore the budget: the pin becomes feasible again.
	if err := m.SetLinkBudget(li, orig); err != nil {
		t.Fatal(err)
	}
	if _, _, ok, err = m.Solve(nil); err != nil || !ok {
		t.Fatalf("restored budget: ok=%v err=%v", ok, err)
	}
	// ResetBounds clears the pin; the default solve succeeds too.
	m.ResetBounds()
	if _, _, ok, err = m.Solve(nil); err != nil || !ok {
		t.Fatalf("after reset: ok=%v err=%v", ok, err)
	}
}

// TestModelMutatorErrors covers the argument validation of the
// capacity mutators.
func TestModelMutatorErrors(t *testing.T) {
	pr := mutatorProblem(t, 3, 4)
	m, err := pr.NewModel(SUM)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SetSpeed(-1, 1); err == nil {
		t.Fatal("negative cluster index must fail")
	}
	if err := m.SetSpeed(0, math.Inf(1)); err == nil {
		t.Fatal("infinite speed must fail")
	}
	if err := m.SetGateway(99, 1); err == nil {
		t.Fatal("out-of-range cluster must fail")
	}
	if err := m.SetGateway(0, math.NaN()); err == nil {
		t.Fatal("NaN gateway must fail")
	}
	if err := m.SetLinkBudget(-1, 1); err == nil {
		t.Fatal("negative link index must fail")
	}
	if len(pr.Platform.Links) > 0 {
		if err := m.SetLinkBudget(0, -2); err == nil {
			t.Fatal("negative budget must fail")
		}
	}
}
