package core

import (
	"fmt"
	"math"

	"repro/internal/lp"
)

// LexMaxMinSolution is the lexicographic max-min optimum of the
// rational relaxation: Levels[k] is the payoff level π_k·α_k
// guaranteed to application k, and the level vector, sorted
// ascending, is lexicographically maximal over all valid rational
// allocations. Applications with π_k ≤ 0 are excluded (Levels 0).
type LexMaxMinSolution struct {
	Alpha  [][]float64
	Levels []float64
}

// LexMaxMin computes the lexicographic max-min fair relaxation — the
// full MAX-MIN fairness of Bertsekas & Gallager that the paper cites
// for its Equation (6) objective. Plain MAXMIN only maximizes the
// worst payoff; the lexicographic refinement then maximizes the
// second worst among allocations preserving the first, and so on.
//
// The classical algorithm runs in rounds: maximize the common level t
// of all unfixed applications (holding fixed ones at their levels),
// then mark as fixed every application that cannot individually rise
// above t (tested with one LP per candidate). Each round fixes at
// least one application, so at most K rounds — O(K²) LP solves, the
// same complexity class as LPRR.
func (pr *Problem) LexMaxMin() (*LexMaxMinSolution, error) {
	if err := pr.Validate(); err != nil {
		return nil, err
	}
	K := pr.K()
	fixed := make([]bool, K)
	levels := make([]float64, K)
	active := 0
	for k := 0; k < K; k++ {
		if pr.Payoffs[k] > 0 {
			active++
		} else {
			fixed[k] = true
		}
	}
	if active == 0 {
		return nil, fmt.Errorf("core: LexMaxMin with no positive payoff")
	}

	var lastAlpha [][]float64
	for active > 0 {
		t, alpha, err := pr.lexRound(fixed, levels, -1)
		if err != nil {
			return nil, err
		}
		lastAlpha = alpha
		// Which unfixed applications are stuck at t? Test each by
		// maximizing it alone subject to everyone else's floor.
		stuck := make([]int, 0, active)
		for k := 0; k < K; k++ {
			if fixed[k] {
				continue
			}
			probe := make([]float64, K)
			copy(probe, levels)
			for j := 0; j < K; j++ {
				if !fixed[j] && j != k {
					probe[j] = t
				}
			}
			best, _, err := pr.lexRound(allFixedExcept(fixed, k), probe, k)
			if err != nil {
				return nil, err
			}
			if best <= t+1e-7*(1+math.Abs(t)) {
				stuck = append(stuck, k)
			}
		}
		if len(stuck) == 0 {
			// Numerical degeneracy: fix everyone at t to guarantee
			// progress (they are all at least t).
			for k := 0; k < K; k++ {
				if !fixed[k] {
					stuck = append(stuck, k)
				}
			}
		}
		for _, k := range stuck {
			fixed[k] = true
			levels[k] = t
			active--
		}
	}
	return &LexMaxMinSolution{Alpha: lastAlpha, Levels: levels}, nil
}

// allFixedExcept returns a fixed-mask where everything is fixed
// except application k (used by the stuck test).
func allFixedExcept(fixed []bool, k int) []bool {
	out := make([]bool, len(fixed))
	for i := range out {
		out[i] = true
	}
	out[k] = false
	return out
}

// lexRound solves one step of the lexicographic algorithm: maximize
// the common payoff level t of the unfixed applications, subject to
// every fixed application keeping at least its recorded level. When
// soloApp >= 0 the objective instead maximizes that single
// application's payoff (the stuck test). Returns the optimum and the
// α matrix attaining it.
func (pr *Problem) lexRound(fixed []bool, levels []float64, soloApp int) (float64, [][]float64, error) {
	K := pr.K()
	pl := pr.Platform

	varIdx := make(map[Pair]int)
	var vars []Pair
	for k := 0; k < K; k++ {
		for l := 0; l < K; l++ {
			if k != l && !pl.Route(k, l).Exists {
				continue
			}
			varIdx[Pair{k, l}] = len(vars)
			vars = append(vars, Pair{k, l})
		}
	}
	nv := len(vars)
	tVar := nv
	prob := lp.New(nv + 1)

	appTerms := func(k int, coeff float64) []lp.Term {
		var terms []lp.Term
		for l := 0; l < K; l++ {
			if idx, ok := varIdx[Pair{k, l}]; ok {
				terms = append(terms, lp.Term{Var: idx, Coeff: coeff})
			}
		}
		return terms
	}

	if soloApp >= 0 {
		prob.SetObjective(tVar, 1)
		// t <= π_solo·α_solo, maximize t (equivalently maximize the
		// solo payoff, but keeps the objective uniform).
		terms := append([]lp.Term{{Var: tVar, Coeff: 1}}, appTerms(soloApp, -pr.Payoffs[soloApp])...)
		prob.AddConstraint(terms, lp.LE, 0)
	} else {
		prob.SetObjective(tVar, 1)
		for k := 0; k < K; k++ {
			if fixed[k] || pr.Payoffs[k] <= 0 {
				continue
			}
			terms := append([]lp.Term{{Var: tVar, Coeff: 1}}, appTerms(k, -pr.Payoffs[k])...)
			prob.AddConstraint(terms, lp.LE, 0)
		}
	}
	// Floors for fixed applications.
	for k := 0; k < K; k++ {
		if !fixed[k] || pr.Payoffs[k] <= 0 || levels[k] <= 0 {
			continue
		}
		prob.AddConstraint(appTerms(k, pr.Payoffs[k]), lp.GE, levels[k])
	}

	// Platform constraints (7b), (7c), (7d)+(7e) in α-space.
	for l := 0; l < K; l++ {
		var terms []lp.Term
		for k := 0; k < K; k++ {
			if idx, ok := varIdx[Pair{k, l}]; ok {
				terms = append(terms, lp.Term{Var: idx, Coeff: 1})
			}
		}
		if len(terms) > 0 {
			prob.AddConstraint(terms, lp.LE, pl.Clusters[l].Speed)
		}
	}
	for k := 0; k < K; k++ {
		var terms []lp.Term
		for l := 0; l < K; l++ {
			if l == k {
				continue
			}
			if idx, ok := varIdx[Pair{k, l}]; ok {
				terms = append(terms, lp.Term{Var: idx, Coeff: 1})
			}
			if idx, ok := varIdx[Pair{l, k}]; ok {
				terms = append(terms, lp.Term{Var: idx, Coeff: 1})
			}
		}
		if len(terms) > 0 {
			prob.AddConstraint(terms, lp.LE, pl.Clusters[k].Gateway)
		}
	}
	linkUse := make([][]lp.Term, len(pl.Links))
	for _, v := range vars {
		if v.K == v.L {
			continue
		}
		rt := pl.Route(v.K, v.L)
		if rt.MinBW <= 0 || math.IsInf(rt.MinBW, 1) {
			continue
		}
		inv := 1.0 / rt.MinBW
		for _, li := range rt.Links {
			linkUse[li] = append(linkUse[li], lp.Term{Var: varIdx[v], Coeff: inv})
		}
	}
	for li := range pl.Links {
		if len(linkUse[li]) > 0 {
			prob.AddConstraint(linkUse[li], lp.LE, float64(pl.Links[li].MaxConnect))
		}
	}

	sol, err := prob.Solve()
	if err != nil {
		return 0, nil, err
	}
	if sol.Status != lp.Optimal {
		return 0, nil, fmt.Errorf("core: lexicographic round %v (floors should always be feasible)", sol.Status)
	}
	alpha := make([][]float64, K)
	for k := 0; k < K; k++ {
		alpha[k] = make([]float64, K)
	}
	for pair, idx := range varIdx {
		v := sol.X[idx]
		if v < 0 {
			v = 0
		}
		alpha[pair.K][pair.L] = v
	}
	return sol.Objective, alpha, nil
}
