package core

import (
	"testing"

	"repro/internal/platform"
)

// mixedLANPlatform has two clusters on the same router (an empty-path
// route with MinBW = +Inf between them) plus a third cluster across a
// backbone link — the mixed LAN/WAN shape of ISSUE 2's regression.
func mixedLANPlatform(t *testing.T) *platform.Platform {
	t.Helper()
	pl := &platform.Platform{
		Routers: 2,
		Links:   []platform.Link{{U: 0, V: 1, BW: 10, MaxConnect: 5}},
		Clusters: []platform.Cluster{
			{Name: "a", Speed: 100, Gateway: 50, Router: 0},
			{Name: "b", Speed: 80, Gateway: 40, Router: 0},
			{Name: "c", Speed: 60, Gateway: 30, Router: 1},
		},
	}
	if err := pl.ComputeRoutes(); err != nil {
		t.Fatal(err)
	}
	return pl
}

func TestModelSameLAN(t *testing.T) {
	pr := NewProblem(mixedLANPlatform(t))
	for _, obj := range []Objective{SUM, MAXMIN} {
		m, err := pr.NewModel(obj)
		if err != nil {
			t.Fatalf("NewModel(%v): %v", obj, err)
		}
		sol, _, ok, err := m.Solve(nil)
		if err != nil || !ok {
			t.Fatalf("Solve(%v): ok=%v err=%v", obj, ok, err)
		}
		rs, ok, err := pr.Relaxed(obj, nil)
		if err != nil || !ok {
			t.Fatalf("Relaxed(%v): ok=%v err=%v", obj, ok, err)
		}
		if diff := sol.Objective - rs.Objective; diff > 1e-6 || diff < -1e-6 {
			t.Fatalf("%v: model obj %g != relaxed obj %g", obj, sol.Objective, rs.Objective)
		}
		m.ResetBounds()
		if _, _, ok, err := m.Solve(nil); err != nil || !ok {
			t.Fatalf("re-Solve(%v) after ResetBounds: ok=%v err=%v", obj, ok, err)
		}
	}
}
