// Package core implements the paper's steady-state multi-application
// divisible-load scheduling problem (§3): the activity variables
// α_{k,l} (load of application A_k shipped from its home cluster C^k
// and computed on cluster C^l per time unit) and β_{k,l} (number of
// network connections opened from C^k to C^l), the steady-state
// constraints of Equations (7a)-(7g), the SUM and MAXMIN objectives
// of Equations (5)/(6), and the linear-program builders used by the
// LP-based heuristics and the exact branch-and-bound solver.
package core

import (
	"fmt"
	"math"

	"repro/internal/lp"
	"repro/internal/platform"
)

// Objective selects between the paper's two optimization criteria.
type Objective int

const (
	// SUM maximizes the total payoff Σ_k π_k·α_k (Equation 5).
	SUM Objective = iota
	// MAXMIN maximizes the minimum payoff min_k π_k·α_k over
	// applications with π_k > 0 (Equation 6) — MAX-MIN fairness.
	MAXMIN
)

func (o Objective) String() string {
	switch o {
	case SUM:
		return "SUM"
	case MAXMIN:
		return "MAXMIN"
	}
	return fmt.Sprintf("Objective(%d)", int(o))
}

// Problem couples a platform with the per-application payoff factors
// π_k. Application A_k originates at cluster C^k, so len(Payoffs)
// must equal the platform's cluster count.
type Problem struct {
	Platform *platform.Platform
	Payoffs  []float64
}

// NewProblem builds a problem with unit payoffs (π_k = 1 for all k).
func NewProblem(pl *platform.Platform) *Problem {
	pi := make([]float64, pl.K())
	for i := range pi {
		pi[i] = 1
	}
	return &Problem{Platform: pl, Payoffs: pi}
}

// Validate checks the problem's structural invariants.
func (pr *Problem) Validate() error {
	if pr.Platform == nil {
		return fmt.Errorf("core: nil platform")
	}
	if err := pr.Platform.Validate(); err != nil {
		return err
	}
	if len(pr.Payoffs) != pr.Platform.K() {
		return fmt.Errorf("core: %d payoffs for %d clusters", len(pr.Payoffs), pr.Platform.K())
	}
	for k, pi := range pr.Payoffs {
		if pi < 0 || math.IsNaN(pi) || math.IsInf(pi, 0) {
			return fmt.Errorf("core: payoff %d = %g, want finite nonnegative", k, pi)
		}
	}
	return nil
}

// K returns the number of applications (= clusters).
func (pr *Problem) K() int { return pr.Platform.K() }

// Allocation is a candidate steady-state operating point: Alpha[k][l]
// is α_{k,l}, Beta[k][l] is β_{k,l}. The diagonal of Beta is unused
// (local computation opens no connection) and must be 0.
type Allocation struct {
	Alpha [][]float64
	Beta  [][]int
}

// NewAllocation returns the all-zero allocation for k applications,
// which is always valid (Equations 7 hold trivially).
func NewAllocation(k int) *Allocation {
	a := &Allocation{Alpha: make([][]float64, k), Beta: make([][]int, k)}
	for i := 0; i < k; i++ {
		a.Alpha[i] = make([]float64, k)
		a.Beta[i] = make([]int, k)
	}
	return a
}

// Clone deep-copies the allocation.
func (a *Allocation) Clone() *Allocation {
	c := NewAllocation(len(a.Alpha))
	for i := range a.Alpha {
		copy(c.Alpha[i], a.Alpha[i])
		copy(c.Beta[i], a.Beta[i])
	}
	return c
}

// AppThroughput returns α_k = Σ_l α_{k,l} (Equation 7a): the load
// processed for application A_k per time unit.
func (a *Allocation) AppThroughput(k int) float64 {
	sum := 0.0
	for _, v := range a.Alpha[k] {
		sum += v
	}
	return sum
}

// Objective evaluates the allocation under the given criterion.
// MAXMIN is taken over applications with π_k > 0; if there are none
// it returns 0.
func (pr *Problem) Objective(obj Objective, a *Allocation) float64 {
	switch obj {
	case SUM:
		total := 0.0
		for k := range pr.Payoffs {
			total += pr.Payoffs[k] * a.AppThroughput(k)
		}
		return total
	case MAXMIN:
		minv := math.Inf(1)
		seen := false
		for k, pi := range pr.Payoffs {
			if pi <= 0 {
				continue
			}
			seen = true
			if v := pi * a.AppThroughput(k); v < minv {
				minv = v
			}
		}
		if !seen {
			return 0
		}
		return minv
	}
	panic(fmt.Sprintf("core: unknown objective %d", int(obj)))
}

// DefaultTol is the feasibility tolerance used by CheckAllocation for
// floating-point allocations produced by the LP-based heuristics.
const DefaultTol = 1e-6

// IntegralityTol is the threshold below which a relaxed connection
// count β̃ is treated as integral (the branch-and-bound leaf test).
// It is deliberately the same magnitude as DefaultTol: a β rounded
// under this tolerance must still pass CheckAllocation at DefaultTol,
// so the two constants are kept as one shared value instead of
// drifting apart as duplicated magic numbers.
const IntegralityTol = DefaultTol

// CheckAllocation verifies Equations (7b)-(7g) against the platform,
// within an absolute-plus-relative tolerance tol per constraint. It
// returns nil iff the allocation is a valid steady-state operating
// point. Additionally it enforces the model-level invariants that
// work only flows over existing routes and that the Beta diagonal is
// zero.
func (pr *Problem) CheckAllocation(a *Allocation, tol float64) error {
	K := pr.K()
	if len(a.Alpha) != K || len(a.Beta) != K {
		return fmt.Errorf("core: allocation sized %dx? for K=%d", len(a.Alpha), K)
	}
	pl := pr.Platform
	// (7f)/(7g): signs, integrality (by type), diagonal, route existence.
	for k := 0; k < K; k++ {
		if len(a.Alpha[k]) != K || len(a.Beta[k]) != K {
			return fmt.Errorf("core: allocation row %d has wrong width", k)
		}
		if a.Beta[k][k] != 0 {
			return fmt.Errorf("core: β_{%d,%d} = %d on the diagonal, want 0", k, k, a.Beta[k][k])
		}
		for l := 0; l < K; l++ {
			if a.Alpha[k][l] < -tol {
				return fmt.Errorf("core: α_{%d,%d} = %g < 0", k, l, a.Alpha[k][l])
			}
			if a.Beta[k][l] < 0 {
				return fmt.Errorf("core: β_{%d,%d} = %d < 0", k, l, a.Beta[k][l])
			}
			if k != l && a.Alpha[k][l] > tol && !pl.Route(k, l).Exists {
				return fmt.Errorf("core: α_{%d,%d} = %g but no route exists", k, l, a.Alpha[k][l])
			}
		}
	}
	// (7b): cluster speed.
	for l := 0; l < K; l++ {
		in := 0.0
		for k := 0; k < K; k++ {
			in += a.Alpha[k][l]
		}
		if s := pl.Clusters[l].Speed; in > s+tol*(1+s) {
			return fmt.Errorf("core: Eq 7b violated at cluster %d: load %g > speed %g", l, in, s)
		}
	}
	// (7c): gateway capacity (outgoing + incoming remote traffic).
	for k := 0; k < K; k++ {
		traffic := 0.0
		for l := 0; l < K; l++ {
			if l == k {
				continue
			}
			traffic += a.Alpha[k][l] + a.Alpha[l][k]
		}
		if g := pl.Clusters[k].Gateway; traffic > g+tol*(1+g) {
			return fmt.Errorf("core: Eq 7c violated at cluster %d: traffic %g > gateway %g", k, traffic, g)
		}
	}
	// (7d): backbone connection budgets.
	used := make([]int, len(pl.Links))
	for k := 0; k < K; k++ {
		for l := 0; l < K; l++ {
			if k == l || a.Beta[k][l] == 0 {
				continue
			}
			rt := pl.Route(k, l)
			if !rt.Exists {
				return fmt.Errorf("core: β_{%d,%d} = %d but no route exists", k, l, a.Beta[k][l])
			}
			for _, li := range rt.Links {
				used[li] += a.Beta[k][l]
			}
		}
	}
	for li, u := range used {
		if u > pl.Links[li].MaxConnect {
			return fmt.Errorf("core: Eq 7d violated on link %d: %d connections > max-connect %d", li, u, pl.Links[li].MaxConnect)
		}
	}
	// (7e): route bandwidth α_{k,l} <= β_{k,l}·min bw. Routes that
	// cross no backbone link (clusters on the same router) have
	// infinite per-connection bandwidth and are constrained only by
	// the gateways, so (7e) is vacuous there.
	for k := 0; k < K; k++ {
		for l := 0; l < K; l++ {
			if k == l || a.Alpha[k][l] <= tol {
				continue
			}
			bw := pl.RouteBW(k, l)
			if math.IsInf(bw, 1) {
				continue
			}
			capKL := float64(a.Beta[k][l]) * bw
			if a.Alpha[k][l] > capKL+tol*(1+capKL) {
				return fmt.Errorf("core: Eq 7e violated on route (%d,%d): α=%g > β·bw=%g", k, l, a.Alpha[k][l], capKL)
			}
		}
	}
	return nil
}

// Pair identifies a (source application, target cluster) route.
type Pair struct{ K, L int }

// RelaxedSolution is the rational-relaxation optimum (the paper's
// "LP" comparator, an upper bound on the mixed-integer optimum).
// BetaFrac[k][l] is the fractional connection count β̃_{k,l}
// associated with the α solution: the fixed integer for routes pinned
// via fixedBeta, or α̃_{k,l}/bw_min(k,l) for free remote routes.
type RelaxedSolution struct {
	Alpha     [][]float64
	BetaFrac  [][]float64
	Objective float64
}

// Relaxed solves the rational relaxation of linear program (7) in
// reduced α-space (see DESIGN.md: with β relaxed, the optimal choice
// is β_{k,l} = α_{k,l}/bw_min(k,l), collapsing (7d)+(7e) into
// per-link constraints on α). fixedBeta optionally pins integer
// connection counts on specific routes (used by LPRR): a pinned route
// contributes its integer count to every link budget on its path and
// caps its α at count·bw_min. Returns ok=false when the constraints
// (with pins) are infeasible.
func (pr *Problem) Relaxed(obj Objective, fixedBeta map[Pair]int) (*RelaxedSolution, bool, error) {
	if err := pr.Validate(); err != nil {
		return nil, false, err
	}
	K := pr.K()
	pl := pr.Platform

	varIdx := make(map[Pair]int)
	var vars []Pair
	for k := 0; k < K; k++ {
		for l := 0; l < K; l++ {
			if k != l && !pl.Route(k, l).Exists {
				continue
			}
			varIdx[Pair{k, l}] = len(vars)
			vars = append(vars, Pair{k, l})
		}
	}
	nv := len(vars)
	tVar := -1
	total := nv
	if obj == MAXMIN {
		tVar = nv
		total = nv + 1
	}
	prob := lp.New(total)

	switch obj {
	case SUM:
		for i, v := range vars {
			prob.SetObjective(i, pr.Payoffs[v.K])
		}
	case MAXMIN:
		prob.SetObjective(tVar, 1)
		any := false
		for k := 0; k < K; k++ {
			if pr.Payoffs[k] <= 0 {
				continue
			}
			any = true
			terms := []lp.Term{{Var: tVar, Coeff: 1}}
			for l := 0; l < K; l++ {
				if idx, ok := varIdx[Pair{k, l}]; ok {
					terms = append(terms, lp.Term{Var: idx, Coeff: -pr.Payoffs[k]})
				}
			}
			prob.AddConstraint(terms, lp.LE, 0)
		}
		if !any {
			return nil, false, fmt.Errorf("core: MAXMIN objective with no positive payoff")
		}
	default:
		return nil, false, fmt.Errorf("core: unknown objective %v", obj)
	}

	// (7b) speed constraints.
	for l := 0; l < K; l++ {
		var terms []lp.Term
		for k := 0; k < K; k++ {
			if idx, ok := varIdx[Pair{k, l}]; ok {
				terms = append(terms, lp.Term{Var: idx, Coeff: 1})
			}
		}
		if len(terms) > 0 {
			prob.AddConstraint(terms, lp.LE, pl.Clusters[l].Speed)
		}
	}
	// (7c) gateway constraints.
	for k := 0; k < K; k++ {
		var terms []lp.Term
		for l := 0; l < K; l++ {
			if l == k {
				continue
			}
			if idx, ok := varIdx[Pair{k, l}]; ok {
				terms = append(terms, lp.Term{Var: idx, Coeff: 1})
			}
			if idx, ok := varIdx[Pair{l, k}]; ok {
				terms = append(terms, lp.Term{Var: idx, Coeff: 1})
			}
		}
		if len(terms) > 0 {
			prob.AddConstraint(terms, lp.LE, pl.Clusters[k].Gateway)
		}
	}
	// (7d)+(7e) merged per link: free routes consume α/bw_min
	// connection-equivalents; pinned routes consume their integer
	// count outright and keep an explicit (7e) cap.
	linkUse := make([][]lp.Term, len(pl.Links))
	linkCap := make([]float64, len(pl.Links))
	for li, l := range pl.Links {
		linkCap[li] = float64(l.MaxConnect)
	}
	for _, v := range vars {
		if v.K == v.L {
			continue
		}
		rt := pl.Route(v.K, v.L)
		if fixed, ok := fixedBeta[v]; ok {
			if fixed < 0 {
				return nil, false, fmt.Errorf("core: fixed β_{%d,%d} = %d < 0", v.K, v.L, fixed)
			}
			for _, li := range rt.Links {
				linkCap[li] -= float64(fixed)
			}
			capV := float64(fixed) * rt.MinBW
			if math.IsInf(capV, 1) {
				continue // same-router pinned route: unconstrained by (7e)
			}
			prob.AddConstraint([]lp.Term{{Var: varIdx[v], Coeff: 1}}, lp.LE, capV)
			continue
		}
		if rt.MinBW <= 0 || math.IsInf(rt.MinBW, 1) {
			// MinBW is +Inf only for same-router clusters: no backbone
			// link is crossed, so no (7d)/(7e) constraint applies.
			continue
		}
		inv := 1.0 / rt.MinBW
		for _, li := range rt.Links {
			linkUse[li] = append(linkUse[li], lp.Term{Var: varIdx[v], Coeff: inv})
		}
	}
	for li := range pl.Links {
		if linkCap[li] < 0 {
			return nil, false, nil // pinned connections alone exceed a budget
		}
		if len(linkUse[li]) > 0 {
			prob.AddConstraint(linkUse[li], lp.LE, linkCap[li])
		}
	}
	for pair := range fixedBeta {
		if _, ok := varIdx[pair]; !ok || pair.K == pair.L {
			return nil, false, fmt.Errorf("core: fixed β on nonexistent or local route (%d,%d)", pair.K, pair.L)
		}
	}

	sol, err := prob.Solve()
	if err != nil {
		return nil, false, err
	}
	switch sol.Status {
	case lp.Infeasible:
		return nil, false, nil
	case lp.Unbounded:
		return nil, false, fmt.Errorf("core: relaxation unbounded (model bug)")
	}

	out := &RelaxedSolution{Objective: sol.Objective}
	out.Alpha = make([][]float64, K)
	out.BetaFrac = make([][]float64, K)
	for k := 0; k < K; k++ {
		out.Alpha[k] = make([]float64, K)
		out.BetaFrac[k] = make([]float64, K)
	}
	for pair, idx := range varIdx {
		a := sol.X[idx]
		if a < 0 {
			a = 0
		}
		out.Alpha[pair.K][pair.L] = a
		if pair.K == pair.L {
			continue
		}
		if fixed, ok := fixedBeta[pair]; ok {
			out.BetaFrac[pair.K][pair.L] = float64(fixed)
		} else if bw := pl.RouteBW(pair.K, pair.L); bw > 0 && !math.IsInf(bw, 1) {
			out.BetaFrac[pair.K][pair.L] = a / bw
		}
	}
	return out, true, nil
}
