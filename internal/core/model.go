package core

import (
	"fmt"
	"math"

	"repro/internal/lp"
)

// Model is a reusable handle on the explicit (α, β) rational
// relaxation of program (7). Where Relaxed/MixedRelaxed build a
// one-shot lp.Problem per call, a Model is built once per
// (problem, objective) pair and then re-solved many times under
// mutated per-route β bounds: every β variable owns two dedicated
// bound rows (β_p ≥ lb, β_p ≤ ub) whose right-hand sides SetBounds
// mutates in place. Because bound changes are RHS-only, each re-solve
// can warm-start the revised simplex from a previous optimal basis
// (lp.Revised's dual-simplex restart) — the engine behind the exact
// branch-and-bound solver's node relaxations and LPRR's pin
// sequence.
type Model struct {
	pr  *Problem
	obj Objective

	prob *lp.Problem
	rev  *lp.Revised

	alphaIdx map[Pair]int
	betaIdx  map[Pair]int
	betaVars []Pair // row-major order

	lbRow, ubRow map[Pair]int
	natural      map[Pair]float64 // per-route cap implied by link budgets
}

// NewModel validates the problem and builds the α/β relaxation with
// mutable bound rows, all β bounds starting at [0, natural cap]. The
// natural cap of route p is the smallest max-connect budget among the
// links its path crosses — already implied by (7d), so the default
// bounds leave the relaxation exactly equivalent to MixedRelaxed with
// no bounds.
func (pr *Problem) NewModel(obj Objective) (*Model, error) {
	if err := pr.Validate(); err != nil {
		return nil, err
	}
	K := pr.K()
	pl := pr.Platform
	m := &Model{
		pr:       pr,
		obj:      obj,
		alphaIdx: make(map[Pair]int),
		betaIdx:  make(map[Pair]int),
		lbRow:    make(map[Pair]int),
		ubRow:    make(map[Pair]int),
		natural:  make(map[Pair]float64),
	}

	var order []Pair
	for k := 0; k < K; k++ {
		for l := 0; l < K; l++ {
			if k != l && !pl.Route(k, l).Exists {
				continue
			}
			order = append(order, Pair{k, l})
		}
	}
	n := 0
	for _, p := range order {
		m.alphaIdx[p] = n
		n++
	}
	for _, p := range order {
		if p.K == p.L {
			continue
		}
		rt := pl.Route(p.K, p.L)
		if len(rt.Links) == 0 {
			continue // same-router: no backbone crossing, no β
		}
		m.betaIdx[p] = n
		m.betaVars = append(m.betaVars, p)
		n++
	}
	tVar := -1
	if obj == MAXMIN {
		tVar = n
		n++
	}
	prob := lp.New(n)

	switch obj {
	case SUM:
		for p, idx := range m.alphaIdx {
			prob.SetObjective(idx, pr.Payoffs[p.K])
		}
	case MAXMIN:
		prob.SetObjective(tVar, 1)
		any := false
		for k := 0; k < K; k++ {
			if pr.Payoffs[k] <= 0 {
				continue
			}
			any = true
			terms := []lp.Term{{Var: tVar, Coeff: 1}}
			for l := 0; l < K; l++ {
				if idx, ok := m.alphaIdx[Pair{k, l}]; ok {
					terms = append(terms, lp.Term{Var: idx, Coeff: -pr.Payoffs[k]})
				}
			}
			prob.AddConstraint(terms, lp.LE, 0)
		}
		if !any {
			return nil, fmt.Errorf("core: MAXMIN objective with no positive payoff")
		}
	default:
		return nil, fmt.Errorf("core: unknown objective %v", obj)
	}

	// (7b) speed.
	for l := 0; l < K; l++ {
		var terms []lp.Term
		for k := 0; k < K; k++ {
			if idx, ok := m.alphaIdx[Pair{k, l}]; ok {
				terms = append(terms, lp.Term{Var: idx, Coeff: 1})
			}
		}
		if len(terms) > 0 {
			prob.AddConstraint(terms, lp.LE, pl.Clusters[l].Speed)
		}
	}
	// (7c) gateways.
	for k := 0; k < K; k++ {
		var terms []lp.Term
		for l := 0; l < K; l++ {
			if l == k {
				continue
			}
			if idx, ok := m.alphaIdx[Pair{k, l}]; ok {
				terms = append(terms, lp.Term{Var: idx, Coeff: 1})
			}
			if idx, ok := m.alphaIdx[Pair{l, k}]; ok {
				terms = append(terms, lp.Term{Var: idx, Coeff: 1})
			}
		}
		if len(terms) > 0 {
			prob.AddConstraint(terms, lp.LE, pl.Clusters[k].Gateway)
		}
	}
	// (7d) per-link connection budgets over β.
	linkUse := make([][]lp.Term, len(pl.Links))
	for p, bIdx := range m.betaIdx {
		rt := pl.Route(p.K, p.L)
		for _, li := range rt.Links {
			linkUse[li] = append(linkUse[li], lp.Term{Var: bIdx, Coeff: 1})
		}
	}
	for li := range pl.Links {
		if len(linkUse[li]) > 0 {
			prob.AddConstraint(linkUse[li], lp.LE, float64(pl.Links[li].MaxConnect))
		}
	}
	// (7e) α_{k,l} − β_{k,l}·bw_min ≤ 0.
	for _, p := range m.betaVars {
		bw := pl.Route(p.K, p.L).MinBW
		prob.AddConstraint([]lp.Term{
			{Var: m.alphaIdx[p], Coeff: 1},
			{Var: m.betaIdx[p], Coeff: -bw},
		}, lp.LE, 0)
	}
	// Mutable bound rows, one pair per β variable.
	for _, p := range m.betaVars {
		rt := pl.Route(p.K, p.L)
		nat := math.Inf(1)
		for _, li := range rt.Links {
			if c := float64(pl.Links[li].MaxConnect); c < nat {
				nat = c
			}
		}
		m.natural[p] = nat
		idx := m.betaIdx[p]
		m.ubRow[p] = prob.AddConstraint([]lp.Term{{Var: idx, Coeff: 1}}, lp.LE, nat)
		m.lbRow[p] = prob.AddConstraint([]lp.Term{{Var: idx, Coeff: 1}}, lp.GE, 0)
	}

	m.prob = prob
	m.rev = lp.NewRevised(prob)
	return m, nil
}

// BetaVars lists the routes carrying a β variable in deterministic
// row-major order — the same set RemoteRoutes reports.
func (m *Model) BetaVars() []Pair {
	out := make([]Pair, len(m.betaVars))
	copy(out, m.betaVars)
	return out
}

// SetBounds mutates route p's β bounds in place (an RHS-only change,
// preserving warm-startability). Ub < 0 means unbounded above, which
// the model realizes as the route's natural link-budget cap.
func (m *Model) SetBounds(p Pair, b BetaBounds) error {
	if _, ok := m.betaIdx[p]; !ok {
		return fmt.Errorf("core: β bounds on route (%d,%d) with no β variable", p.K, p.L)
	}
	lb := b.Lb
	if lb < 0 {
		lb = 0
	}
	ub := m.natural[p]
	if b.Ub >= 0 && b.Ub < ub {
		ub = b.Ub
	}
	m.prob.SetRHS(m.lbRow[p], lb)
	m.prob.SetRHS(m.ubRow[p], ub)
	return nil
}

// ResetBounds restores every β bound to its default [0, natural cap].
func (m *Model) ResetBounds() {
	for _, p := range m.betaVars {
		m.prob.SetRHS(m.lbRow[p], 0)
		m.prob.SetRHS(m.ubRow[p], m.natural[p])
	}
}

// Solve solves the relaxation under the current bounds. A non-nil
// `from` basis warm-starts the revised simplex (pass the basis
// returned by the parent/previous solve); the returned basis
// snapshots this solve's final basis for future warm starts.
// ok=false reports infeasibility of the current bound set.
func (m *Model) Solve(from *lp.Basis) (*MixedSolution, *lp.Basis, bool, error) {
	sol, basis, err := m.rev.SolveFrom(from)
	if err != nil {
		return nil, nil, false, err
	}
	out, ok, err := m.extract(sol)
	return out, basis, ok, err
}

// SolveWith runs a one-shot cold solve of the current bound set
// through an explicit backend — the reference path used by the
// dense-vs-revised cross-checks and the cold-solve benchmark mode.
func (m *Model) SolveWith(s lp.Solver) (*MixedSolution, bool, error) {
	sol, err := m.prob.SolveWith(s)
	if err != nil {
		return nil, false, err
	}
	return m.extract(sol)
}

func (m *Model) extract(sol lp.Solution) (*MixedSolution, bool, error) {
	switch sol.Status {
	case lp.Infeasible:
		return nil, false, nil
	case lp.Unbounded:
		return nil, false, fmt.Errorf("core: mixed relaxation unbounded (model bug)")
	}
	K := m.pr.K()
	out := &MixedSolution{Objective: sol.Objective, Beta: make(map[Pair]float64, len(m.betaIdx))}
	out.Alpha = make([][]float64, K)
	for k := 0; k < K; k++ {
		out.Alpha[k] = make([]float64, K)
	}
	for p, idx := range m.alphaIdx {
		v := sol.X[idx]
		if v < 0 {
			v = 0
		}
		out.Alpha[p.K][p.L] = v
	}
	for p, idx := range m.betaIdx {
		v := sol.X[idx]
		if v < 0 {
			v = 0
		}
		out.Beta[p] = v
	}
	return out, true, nil
}
