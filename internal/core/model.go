package core

import (
	"fmt"
	"math"

	"repro/internal/lp"
)

// Model is a reusable handle on the explicit (α, β) rational
// relaxation of program (7). Where Relaxed/MixedRelaxed build a
// one-shot lp.Problem per call, a Model is built once per
// (problem, objective) pair and then re-solved many times under
// mutated per-route β bounds: every β variable carries native
// [lb, ub] bounds that SetBounds mutates in place through
// lp.Problem.SetVarBounds — no bound rows, so branching and pinning
// never grow the constraint matrix, and the basis stays 2·|routes|
// rows smaller than the historical row encoding. Because bound
// changes (like RHS changes) leave every reduced cost intact, each
// re-solve can warm-start the revised simplex from a previous
// optimal basis (lp.Revised's dual-simplex restart) — the engine
// behind the exact branch-and-bound solver's node relaxations and
// LPRR's pin sequence.
//
// Platform capacities are equally mutable: SetSpeed, SetGateway and
// SetLinkBudget rewrite the right-hand sides of the (7b), (7c) and
// (7d) rows in place, mirroring multiapp.Model's mutators. This is
// the §1 adaptability contract — the constraint structure is frozen
// at build time, capacities and bounds drift epoch to epoch —
// exploited by adapt's warm epoch engine.
type Model struct {
	pr  *Problem
	obj Objective

	prob *lp.Problem
	rev  *lp.Revised

	alphaIdx map[Pair]int
	betaIdx  map[Pair]int
	betaVars []Pair       // row-major order
	betaOrd  map[Pair]int // route → ordinal into the per-β slices below

	// Per-β-route mutable state, indexed by the betaVars ordinal —
	// slices, not maps, because ResetBounds and the per-epoch
	// capacity injections walk every route on hot paths.
	betaVarIdx   []int     // LP variable index per ordinal
	natural      []float64 // cap implied by link budgets
	curLb, curUb []float64 // explicit SetBounds state (curUb < 0: none)
	crossed      []bool    // native only: lb > effective ub
	numCrossed   int

	// rowBounds selects the historical encoding (two explicit bound
	// rows per β variable) instead of native variable bounds; kept
	// for numerical cross-checks and the E12 before/after benchmark.
	rowBounds    bool
	lbRow, ubRow map[Pair]int // legacy row encoding only

	speedRow   []int     // LP row of cluster l's (7b) constraint, -1 if absent
	gatewayRow []int     // LP row of cluster k's (7c) constraint, -1 if absent
	linkRow    []int     // LP row of link li's (7d) constraint, -1 if absent
	budget     []float64 // current per-link connection budgets
	linkRoutes [][]int32 // β ordinals whose route crosses each link
}

// NewModel validates the problem and builds the α/β relaxation with
// native mutable β bounds, all starting at [0, natural cap]. The
// natural cap of route p is the smallest max-connect budget among the
// links its path crosses — already implied by (7d), so the default
// bounds leave the relaxation exactly equivalent to MixedRelaxed with
// no bounds.
func (pr *Problem) NewModel(obj Objective) (*Model, error) {
	return pr.newModel(obj, false, lp.LUEtaRep)
}

// NewModelRep is NewModel over an explicit lp basis representation —
// the hook the E13 sweep and benchmarks use to drive the same warm
// epoch loop through the sparse LU/eta factorization (the default)
// and the dense explicit inverse (the PR 3 baseline).
func (pr *Problem) NewModelRep(obj Objective, rep lp.BasisRep) (*Model, error) {
	return pr.newModel(obj, false, rep)
}

// NewModelRowBounds builds the same relaxation with the historical
// bound-row encoding: two dedicated constraint rows per β variable
// (β_p ≥ lb, β_p ≤ ub) whose right-hand sides SetBounds mutates. It
// is retained purely as the reference formulation — the equivalence
// tests pin native-vs-row objectives to 1e-9, and the E12 benchmark
// measures what retiring the rows buys — and should not be used by
// new callers.
func (pr *Problem) NewModelRowBounds(obj Objective) (*Model, error) {
	return pr.newModel(obj, true, lp.LUEtaRep)
}

func (pr *Problem) newModel(obj Objective, rowBounds bool, rep lp.BasisRep) (*Model, error) {
	if err := pr.Validate(); err != nil {
		return nil, err
	}
	K := pr.K()
	pl := pr.Platform
	m := &Model{
		pr:        pr,
		obj:       obj,
		alphaIdx:  make(map[Pair]int),
		betaIdx:   make(map[Pair]int),
		betaOrd:   make(map[Pair]int),
		rowBounds: rowBounds,
	}
	if rowBounds {
		m.lbRow = make(map[Pair]int)
		m.ubRow = make(map[Pair]int)
	}

	var order []Pair
	for k := 0; k < K; k++ {
		for l := 0; l < K; l++ {
			if k != l && !pl.Route(k, l).Exists {
				continue
			}
			order = append(order, Pair{k, l})
		}
	}
	n := 0
	for _, p := range order {
		m.alphaIdx[p] = n
		n++
	}
	for _, p := range order {
		if p.K == p.L {
			continue
		}
		rt := pl.Route(p.K, p.L)
		if len(rt.Links) == 0 {
			continue // same-router: no backbone crossing, no β
		}
		m.betaIdx[p] = n
		m.betaOrd[p] = len(m.betaVars)
		m.betaVars = append(m.betaVars, p)
		n++
	}
	tVar := -1
	if obj == MAXMIN {
		tVar = n
		n++
	}
	prob := lp.New(n)

	switch obj {
	case SUM:
		for p, idx := range m.alphaIdx {
			prob.SetObjective(idx, pr.Payoffs[p.K])
		}
	case MAXMIN:
		prob.SetObjective(tVar, 1)
		any := false
		for k := 0; k < K; k++ {
			if pr.Payoffs[k] <= 0 {
				continue
			}
			any = true
			terms := []lp.Term{{Var: tVar, Coeff: 1}}
			for l := 0; l < K; l++ {
				if idx, ok := m.alphaIdx[Pair{k, l}]; ok {
					terms = append(terms, lp.Term{Var: idx, Coeff: -pr.Payoffs[k]})
				}
			}
			prob.AddConstraint(terms, lp.LE, 0)
		}
		if !any {
			return nil, fmt.Errorf("core: MAXMIN objective with no positive payoff")
		}
	default:
		return nil, fmt.Errorf("core: unknown objective %v", obj)
	}

	// (7b) speed.
	m.speedRow = make([]int, K)
	for l := 0; l < K; l++ {
		m.speedRow[l] = -1
		var terms []lp.Term
		for k := 0; k < K; k++ {
			if idx, ok := m.alphaIdx[Pair{k, l}]; ok {
				terms = append(terms, lp.Term{Var: idx, Coeff: 1})
			}
		}
		if len(terms) > 0 {
			m.speedRow[l] = prob.AddConstraint(terms, lp.LE, pl.Clusters[l].Speed)
		}
	}
	// (7c) gateways.
	m.gatewayRow = make([]int, K)
	for k := 0; k < K; k++ {
		m.gatewayRow[k] = -1
		var terms []lp.Term
		for l := 0; l < K; l++ {
			if l == k {
				continue
			}
			if idx, ok := m.alphaIdx[Pair{k, l}]; ok {
				terms = append(terms, lp.Term{Var: idx, Coeff: 1})
			}
			if idx, ok := m.alphaIdx[Pair{l, k}]; ok {
				terms = append(terms, lp.Term{Var: idx, Coeff: 1})
			}
		}
		if len(terms) > 0 {
			m.gatewayRow[k] = prob.AddConstraint(terms, lp.LE, pl.Clusters[k].Gateway)
		}
	}
	// (7d) per-link connection budgets over β.
	linkUse := make([][]lp.Term, len(pl.Links))
	m.linkRoutes = make([][]int32, len(pl.Links))
	for ord, p := range m.betaVars {
		bIdx := m.betaIdx[p]
		rt := pl.Route(p.K, p.L)
		for _, li := range rt.Links {
			linkUse[li] = append(linkUse[li], lp.Term{Var: bIdx, Coeff: 1})
			m.linkRoutes[li] = append(m.linkRoutes[li], int32(ord))
		}
	}
	m.linkRow = make([]int, len(pl.Links))
	m.budget = make([]float64, len(pl.Links))
	for li := range pl.Links {
		m.linkRow[li] = -1
		m.budget[li] = float64(pl.Links[li].MaxConnect)
		if len(linkUse[li]) > 0 {
			m.linkRow[li] = prob.AddConstraint(linkUse[li], lp.LE, m.budget[li])
		}
	}
	// (7e) α_{k,l} − β_{k,l}·bw_min ≤ 0. Every β route crosses at
	// least one backbone link (same-router routes, whose MinBW is +Inf,
	// carry no β variable), so bw is finite here; the guard keeps ±Inf
	// out of the LP even if that invariant is ever relaxed.
	for _, p := range m.betaVars {
		bw := pl.Route(p.K, p.L).MinBW
		if math.IsInf(bw, 1) {
			continue
		}
		prob.AddConstraint([]lp.Term{
			{Var: m.alphaIdx[p], Coeff: 1},
			{Var: m.betaIdx[p], Coeff: -bw},
		}, lp.LE, 0)
	}
	// Mutable β bounds, [0, natural cap] each. The natural cap (min
	// link budget over the path) is finite for the same reason.
	// Native mode writes them as variable bounds; the legacy encoding
	// appends its two rows per route here instead.
	m.prob = prob
	m.betaVarIdx = make([]int, len(m.betaVars))
	for ord, p := range m.betaVars {
		m.betaVarIdx[ord] = m.betaIdx[p]
	}
	m.natural = make([]float64, len(m.betaVars))
	m.curLb = make([]float64, len(m.betaVars))
	m.curUb = make([]float64, len(m.betaVars))
	m.crossed = make([]bool, len(m.betaVars))
	for ord, p := range m.betaVars {
		m.natural[ord] = m.naturalCap(ord)
		m.curLb[ord] = 0
		m.curUb[ord] = -1
		if m.rowBounds {
			idx := m.betaIdx[p]
			m.ubRow[p] = prob.AddConstraint([]lp.Term{{Var: idx, Coeff: 1}}, lp.LE, m.natural[ord])
			m.lbRow[p] = prob.AddConstraint([]lp.Term{{Var: idx, Coeff: 1}}, lp.GE, 0)
		} else {
			m.applyBounds(ord)
		}
	}

	m.rev = lp.NewRevisedRep(prob, rep)
	return m, nil
}

// SolverStats returns the lp solver's accumulated activity counters
// (pivots, refactorizations, bound flips, warm/cold solve mix) for
// this model's persistent revised-simplex instance — the per-solve
// cost drivers the E11/E12/E13 sweeps report.
func (m *Model) SolverStats() lp.Stats { return m.rev.Stats() }

// ResetSolverStats zeroes the counters SolverStats reports.
func (m *Model) ResetSolverStats() { m.rev.ResetStats() }

// WarmPivotBudget reports the pivot budget a warm restart on this
// model's solver gets before falling back cold — the denominator the
// scheduling service's health conditions measure warm-restart
// headroom against.
func (m *Model) WarmPivotBudget() int { return m.rev.WarmPivotBudget() }

// PrimeWarm prepares this model's freshly built solver to accept an
// imported basis warm (see lp.Revised.PrimeWarm): a scheduling
// session rebuilt from a serialized snapshot on another replica calls
// this before its first Solve so the restored basis restarts the dual
// simplex instead of triggering a cold solve. A no-op once the model
// has solved.
func (m *Model) PrimeWarm() { m.rev.PrimeWarm() }

// Rebase puts the solver on the canonical footing a snapshot-restored
// model starts from (see lp.Revised.Rebase): identity row signs, no
// live factorization, fresh pricing. A scheduling session calls this
// at each committed solve so the answer is a pure function of the
// model's discrete state — matrix, capacities, bounds, carried basis
// — and therefore bit-identical whether the solve runs on the session
// that has served every epoch live or on a replica promoted from a
// snapshot mid-history.
func (m *Model) Rebase() { m.rev.Rebase() }

// BetaVars lists the routes carrying a β variable in deterministic
// row-major order — the same set RemoteRoutes reports.
func (m *Model) BetaVars() []Pair {
	out := make([]Pair, len(m.betaVars))
	copy(out, m.betaVars)
	return out
}

// naturalCap returns the β cap link budgets imply on the ord-th β
// route: the smallest current budget among the links its path
// crosses.
func (m *Model) naturalCap(ord int) float64 {
	p := m.betaVars[ord]
	nat := math.Inf(1)
	for _, li := range m.pr.Platform.Route(p.K, p.L).Links {
		if c := m.budget[li]; c < nat {
			nat = c
		}
	}
	return nat
}

// applyBounds writes the ord-th β route's effective bounds: the
// explicit SetBounds state clipped to the (possibly mutated) natural
// link-budget cap. Native mode rejects an empty box at this layer —
// the LP never sees lb > ub; the route is recorded as crossed and
// Solve short-circuits to infeasible, exactly the verdict the legacy
// encoding reaches by running the simplex on the contradictory rows.
func (m *Model) applyBounds(ord int) {
	lb := m.curLb[ord]
	ub := m.natural[ord]
	if e := m.curUb[ord]; e >= 0 && e < ub {
		ub = e
	}
	if m.rowBounds {
		p := m.betaVars[ord]
		m.prob.SetRHS(m.lbRow[p], lb)
		m.prob.SetRHS(m.ubRow[p], ub)
		return
	}
	if lb > ub {
		if !m.crossed[ord] {
			m.crossed[ord] = true
			m.numCrossed++
		}
		return
	}
	if m.crossed[ord] {
		m.crossed[ord] = false
		m.numCrossed--
	}
	m.prob.SetVarBounds(m.betaVarIdx[ord], lb, ub)
}

// SetBounds mutates route p's β bounds in place (a bound-only
// change, preserving warm-startability). Ub < 0 means unbounded
// above, which the model realizes as the route's natural link-budget
// cap.
func (m *Model) SetBounds(p Pair, b BetaBounds) error {
	ord, ok := m.betaOrd[p]
	if !ok {
		return fmt.Errorf("core: β bounds on route (%d,%d) with no β variable", p.K, p.L)
	}
	lb := b.Lb
	if lb < 0 {
		lb = 0
	}
	ub := b.Ub
	if ub < 0 {
		ub = -1
	}
	m.curLb[ord] = lb
	m.curUb[ord] = ub
	m.applyBounds(ord)
	return nil
}

// ResetBounds restores every β bound to its default [0, natural cap].
func (m *Model) ResetBounds() {
	for ord := range m.betaVars {
		if m.curLb[ord] == 0 && m.curUb[ord] == -1 {
			continue // already at the default
		}
		m.curLb[ord] = 0
		m.curUb[ord] = -1
		m.applyBounds(ord)
	}
}

// SetSpeed mutates cluster l's computing-speed capacity (7b) — an
// RHS-only change. A cluster hosting no activity variables has no
// speed row; the call is then a no-op.
func (m *Model) SetSpeed(l int, speed float64) error {
	if l < 0 || l >= len(m.speedRow) {
		return fmt.Errorf("core: cluster %d out of range", l)
	}
	if speed < 0 || math.IsNaN(speed) || math.IsInf(speed, 0) {
		return fmt.Errorf("core: speed %g invalid", speed)
	}
	if r := m.speedRow[l]; r >= 0 {
		m.prob.SetRHS(r, speed)
	}
	return nil
}

// SetGateway mutates cluster k's gateway capacity (7c) — an RHS-only
// change.
func (m *Model) SetGateway(k int, g float64) error {
	if k < 0 || k >= len(m.gatewayRow) {
		return fmt.Errorf("core: cluster %d out of range", k)
	}
	if g < 0 || math.IsNaN(g) || math.IsInf(g, 0) {
		return fmt.Errorf("core: gateway %g invalid", g)
	}
	if r := m.gatewayRow[k]; r >= 0 {
		m.prob.SetRHS(r, g)
	}
	return nil
}

// SetLinkBudget mutates backbone link li's connection budget (7d) and
// propagates the change into the natural β caps of every route whose
// path crosses the link (their effective upper bounds are re-applied,
// still clipped by any explicit SetBounds state). RHS and variable
// bounds only, so warm-startability is preserved.
func (m *Model) SetLinkBudget(li int, maxConnect float64) error {
	if li < 0 || li >= len(m.linkRow) {
		return fmt.Errorf("core: link %d out of range", li)
	}
	if maxConnect < 0 || math.IsNaN(maxConnect) || math.IsInf(maxConnect, 0) {
		return fmt.Errorf("core: max-connect %g invalid", maxConnect)
	}
	if m.budget[li] == maxConnect {
		return nil // no-op injection: the natural caps are unchanged
	}
	m.budget[li] = maxConnect
	if r := m.linkRow[li]; r >= 0 {
		m.prob.SetRHS(r, maxConnect)
	}
	for _, ord := range m.linkRoutes[li] {
		if nat := m.naturalCap(int(ord)); nat != m.natural[ord] {
			m.natural[ord] = nat
			m.applyBounds(int(ord))
		}
	}
	return nil
}

// Rows returns the model's constraint row count m — the basis
// dimension every simplex iteration pays for. Native bounds keep it
// exactly 2·|BetaVars()| smaller than the legacy row encoding.
func (m *Model) Rows() int { return m.prob.NumConstraints() }

// CapacityState is an opaque snapshot of everything a Model lets
// callers mutate between solves: the speed/gateway/link right-hand
// sides, the per-link budgets with the natural β caps they imply, and
// the explicit SetBounds state (including crossed-box bookkeeping).
// It exists for what-if queries — mutate, solve, RestoreState — so a
// shared warm model can answer hypotheticals and return to its
// committed state exactly.
type CapacityState struct {
	speed, gateway []float64 // RHS per cluster (NaN where no row exists)
	budget         []float64
	natural        []float64
	curLb, curUb   []float64
	crossed        []bool
	numCrossed     int
}

// CaptureState snapshots the model's current capacity and bound state.
// The snapshot is a deep copy: later mutations do not affect it.
func (m *Model) CaptureState() *CapacityState {
	K := len(m.speedRow)
	s := &CapacityState{
		speed:      make([]float64, K),
		gateway:    make([]float64, K),
		budget:     append([]float64(nil), m.budget...),
		natural:    append([]float64(nil), m.natural...),
		curLb:      append([]float64(nil), m.curLb...),
		curUb:      append([]float64(nil), m.curUb...),
		crossed:    append([]bool(nil), m.crossed...),
		numCrossed: m.numCrossed,
	}
	for i := 0; i < K; i++ {
		s.speed[i] = math.NaN()
		s.gateway[i] = math.NaN()
		if r := m.speedRow[i]; r >= 0 {
			s.speed[i] = m.prob.RHS(r)
		}
		if r := m.gatewayRow[i]; r >= 0 {
			s.gateway[i] = m.prob.RHS(r)
		}
	}
	return s
}

// RestoreState restores a snapshot taken by CaptureState on this
// model, undoing every SetSpeed/SetGateway/SetLinkBudget/SetBounds
// (and ResetBounds) issued since. All writes are RHS or variable-bound
// mutations, so warm-startability from any basis produced under the
// restored state is preserved. Restoring a snapshot from a different
// model is a programming error (the slices won't line up) and panics.
func (m *Model) RestoreState(s *CapacityState) {
	if len(s.budget) != len(m.budget) || len(s.natural) != len(m.natural) {
		panic("core: RestoreState with a snapshot from a different model")
	}
	for i := 0; i < len(m.speedRow); i++ {
		if r := m.speedRow[i]; r >= 0 {
			m.prob.SetRHS(r, s.speed[i])
		}
		if r := m.gatewayRow[i]; r >= 0 {
			m.prob.SetRHS(r, s.gateway[i])
		}
	}
	copy(m.budget, s.budget)
	for li, r := range m.linkRow {
		if r >= 0 {
			m.prob.SetRHS(r, m.budget[li])
		}
	}
	copy(m.natural, s.natural)
	copy(m.curLb, s.curLb)
	copy(m.curUb, s.curUb)
	copy(m.crossed, s.crossed)
	m.numCrossed = s.numCrossed
	// Re-apply every β route's effective bounds from the restored
	// state. applyBounds leaves the LP bounds of a crossed route
	// untouched (possibly stale from the rolled-back mutations), which
	// is unobservable: Solve short-circuits while the box is crossed,
	// and any transition out of crossed rewrites the LP bounds.
	for ord := range m.betaVars {
		m.applyBounds(ord)
	}
}

// Solve solves the relaxation under the current bounds. A non-nil
// `from` basis warm-starts the revised simplex (pass the basis
// returned by the parent/previous solve); the returned basis
// snapshots this solve's final basis for future warm starts.
// ok=false reports infeasibility of the current bound set — found
// either by the solver, or immediately when a route's lower bound
// crossed its effective cap (an empty box needs no LP).
func (m *Model) Solve(from *lp.Basis) (*MixedSolution, *lp.Basis, bool, error) {
	if m.numCrossed > 0 {
		return nil, nil, false, nil
	}
	sol, basis, err := m.rev.SolveFrom(from)
	if err != nil {
		return nil, nil, false, err
	}
	out, ok, err := m.extract(sol)
	return out, basis, ok, err
}

// SolveEphemeral is Solve for callers that discard the resulting
// basis — the what-if pattern: mutate, solve, restore. It skips the
// lp layer's per-solve basis snapshot and X allocation (the solution
// is extracted from a scratch buffer before returning), and never
// mutates `from`, so the caller's committed basis stays valid.
func (m *Model) SolveEphemeral(from *lp.Basis) (*MixedSolution, bool, error) {
	if m.numCrossed > 0 {
		return nil, false, nil
	}
	sol, err := m.rev.SolveEphemeral(from)
	if err != nil {
		return nil, false, err
	}
	return m.extract(sol)
}

// SolveWith runs a one-shot cold solve of the current bound set
// through an explicit backend — the reference path used by the
// dense-vs-revised cross-checks and the cold-solve benchmark mode.
func (m *Model) SolveWith(s lp.Solver) (*MixedSolution, bool, error) {
	if m.numCrossed > 0 {
		return nil, false, nil
	}
	sol, err := m.prob.SolveWith(s)
	if err != nil {
		return nil, false, err
	}
	return m.extract(sol)
}

func (m *Model) extract(sol lp.Solution) (*MixedSolution, bool, error) {
	switch sol.Status {
	case lp.Infeasible:
		return nil, false, nil
	case lp.Unbounded:
		return nil, false, fmt.Errorf("core: mixed relaxation unbounded (model bug)")
	}
	K := m.pr.K()
	out := &MixedSolution{Objective: sol.Objective, Beta: make(map[Pair]float64, len(m.betaIdx))}
	out.Alpha = make([][]float64, K)
	for k := 0; k < K; k++ {
		out.Alpha[k] = make([]float64, K)
	}
	for p, idx := range m.alphaIdx {
		v := sol.X[idx]
		if v < 0 {
			v = 0
		}
		out.Alpha[p.K][p.L] = v
	}
	for p, idx := range m.betaIdx {
		v := sol.X[idx]
		if v < 0 {
			v = 0
		}
		out.Beta[p] = v
	}
	return out, true, nil
}
