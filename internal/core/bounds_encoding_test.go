package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/lp"
)

// TestNativeBoundsRowDelta pins the structural payoff of the native
// bounded-variable encoding: a model built with native bounds has
// exactly 2·|β routes| fewer constraint rows than the legacy
// encoding, which carried one lb row and one ub row per route.
func TestNativeBoundsRowDelta(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(300 + seed))
		pr := randomPlatformProblem(t, rng, 4+rng.Intn(6))
		obj := []Objective{SUM, MAXMIN}[seed%2]
		native, err := pr.NewModel(obj)
		if err != nil {
			t.Fatal(err)
		}
		legacy, err := pr.NewModelRowBounds(obj)
		if err != nil {
			t.Fatal(err)
		}
		routes := len(native.BetaVars())
		if got, want := native.Rows(), legacy.Rows()-2*routes; got != want {
			t.Fatalf("seed %d: native rows %d, legacy rows %d, routes %d: want native = legacy - 2·routes = %d",
				seed, native.Rows(), legacy.Rows(), routes, want)
		}
	}
}

// TestNativeMatchesRowEncoded drives the native and the legacy
// row-encoded model through identical randomized bound-mutation
// sequences — pins, one-sided branches, resets — and requires every
// solve (warm revised on both, dense reference on both) to agree on
// feasibility and, when feasible, on the objective to 1e-9.
func TestNativeMatchesRowEncoded(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(400 + seed))
		pr := randomPlatformProblem(t, rng, 4+rng.Intn(4))
		obj := []Objective{SUM, MAXMIN}[seed%2]
		native, err := pr.NewModel(obj)
		if err != nil {
			t.Fatal(err)
		}
		legacy, err := pr.NewModelRowBounds(obj)
		if err != nil {
			t.Fatal(err)
		}
		betas := native.BetaVars()
		if len(betas) == 0 {
			continue
		}
		var nBasis, lBasis *lp.Basis
		for step := 0; step < 12; step++ {
			// One shared mutation per step, applied to both models.
			p := betas[rng.Intn(len(betas))]
			var b BetaBounds
			switch rng.Intn(4) {
			case 0: // pin
				v := float64(rng.Intn(4))
				b = BetaBounds{Lb: v, Ub: v}
			case 1: // branch down
				b = BetaBounds{Lb: 0, Ub: float64(rng.Intn(3))}
			case 2: // branch up (may cross the natural cap → infeasible)
				b = BetaBounds{Lb: float64(1 + rng.Intn(5)), Ub: -1}
			case 3: // reset
				b = BetaBounds{Lb: 0, Ub: -1}
			}
			if err := native.SetBounds(p, b); err != nil {
				t.Fatal(err)
			}
			if err := legacy.SetBounds(p, b); err != nil {
				t.Fatal(err)
			}

			nSol, nb, nOK, err := native.Solve(nBasis)
			if err != nil {
				t.Fatalf("seed %d step %d: native warm: %v", seed, step, err)
			}
			lSol, lb, lOK, err := legacy.Solve(lBasis)
			if err != nil {
				t.Fatalf("seed %d step %d: legacy warm: %v", seed, step, err)
			}
			nDense, ndOK, err := native.SolveWith(lp.DenseSolver{})
			if err != nil {
				t.Fatalf("seed %d step %d: native dense: %v", seed, step, err)
			}
			lDense, ldOK, err := legacy.SolveWith(lp.DenseSolver{})
			if err != nil {
				t.Fatalf("seed %d step %d: legacy dense: %v", seed, step, err)
			}
			if nOK != lOK || nOK != ndOK || nOK != ldOK {
				t.Fatalf("seed %d step %d: feasibility disagreement native=%v legacy=%v nativeDense=%v legacyDense=%v",
					seed, step, nOK, lOK, ndOK, ldOK)
			}
			if nOK {
				tol := 1e-9 * (1 + math.Abs(lSol.Objective))
				if math.Abs(nSol.Objective-lSol.Objective) > tol {
					t.Fatalf("seed %d step %d: native %.12g, legacy %.12g (Δ=%g)",
						seed, step, nSol.Objective, lSol.Objective, math.Abs(nSol.Objective-lSol.Objective))
				}
				if math.Abs(nDense.Objective-lDense.Objective) > tol {
					t.Fatalf("seed %d step %d: native dense %.12g, legacy dense %.12g",
						seed, step, nDense.Objective, lDense.Objective)
				}
				nBasis, lBasis = nb, lb
			}
		}
	}
}

// TestNativeMatchesRowEncodedUnderLinkBudgets adds capacity drift to
// the comparison: link-budget mutations move the natural β caps (the
// native ub, the legacy ub row) while explicit bounds persist, the
// §1 adaptability access pattern.
func TestNativeMatchesRowEncodedUnderLinkBudgets(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(500 + seed))
		pr := randomPlatformProblem(t, rng, 4+rng.Intn(4))
		if len(pr.Platform.Links) == 0 {
			continue
		}
		native, err := pr.NewModel(SUM)
		if err != nil {
			t.Fatal(err)
		}
		legacy, err := pr.NewModelRowBounds(SUM)
		if err != nil {
			t.Fatal(err)
		}
		betas := native.BetaVars()
		var nBasis, lBasis *lp.Basis
		for step := 0; step < 10; step++ {
			if len(betas) > 0 && rng.Float64() < 0.5 {
				p := betas[rng.Intn(len(betas))]
				b := BetaBounds{Lb: float64(rng.Intn(2)), Ub: float64(rng.Intn(4)) - 1}
				if err := native.SetBounds(p, b); err != nil {
					t.Fatal(err)
				}
				if err := legacy.SetBounds(p, b); err != nil {
					t.Fatal(err)
				}
			} else {
				li := rng.Intn(len(pr.Platform.Links))
				budget := float64(rng.Intn(6))
				if err := native.SetLinkBudget(li, budget); err != nil {
					t.Fatal(err)
				}
				if err := legacy.SetLinkBudget(li, budget); err != nil {
					t.Fatal(err)
				}
			}
			nSol, nb, nOK, err := native.Solve(nBasis)
			if err != nil {
				t.Fatalf("seed %d step %d: native: %v", seed, step, err)
			}
			lSol, lb, lOK, err := legacy.Solve(lBasis)
			if err != nil {
				t.Fatalf("seed %d step %d: legacy: %v", seed, step, err)
			}
			if nOK != lOK {
				t.Fatalf("seed %d step %d: feasibility disagreement native=%v legacy=%v", seed, step, nOK, lOK)
			}
			if !nOK {
				continue
			}
			if math.Abs(nSol.Objective-lSol.Objective) > 1e-9*(1+math.Abs(lSol.Objective)) {
				t.Fatalf("seed %d step %d: native %.12g, legacy %.12g", seed, step, nSol.Objective, lSol.Objective)
			}
			nBasis, lBasis = nb, lb
		}
	}
}
