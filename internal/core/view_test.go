package core

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

// viewMutate applies a random capacity/bound mutation mix to any
// target sharing Model's mutator API, deriving everything from rng so
// the same seed produces the same mutation on a view and on the
// serial reference path.
func viewMutate(t *testing.T, m interface {
	SetSpeed(int, float64) error
	SetGateway(int, float64) error
	SetLinkBudget(int, float64) error
	SetBounds(Pair, BetaBounds) error
}, pr *Problem, routes []Pair, rng *rand.Rand) {
	t.Helper()
	k := rng.Intn(len(pr.Platform.Clusters))
	if err := m.SetSpeed(k, pr.Platform.Clusters[k].Speed*(0.4+rng.Float64())); err != nil {
		t.Fatal(err)
	}
	if err := m.SetGateway(k, pr.Platform.Clusters[k].Gateway*(0.4+rng.Float64())); err != nil {
		t.Fatal(err)
	}
	if len(pr.Platform.Links) > 0 && rng.Float64() < 0.7 {
		li := rng.Intn(len(pr.Platform.Links))
		if err := m.SetLinkBudget(li, float64(rng.Intn(pr.Platform.Links[li].MaxConnect+2))); err != nil {
			t.Fatal(err)
		}
	}
	if len(routes) > 0 && rng.Float64() < 0.5 {
		p := routes[rng.Intn(len(routes))]
		if err := m.SetBounds(p, BetaBounds{Lb: 0, Ub: rng.Float64() * 3}); err != nil {
			t.Fatal(err)
		}
	}
}

// TestForkViewMatchesSerialWhatIf pins the view contract: a forked
// view answers a mutation exactly like the serial capture/mutate/
// solve/restore path on the parent, and the parent's committed state
// and warm re-solve are untouched afterwards.
func TestForkViewMatchesSerialWhatIf(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		pr := mutatorProblem(t, seed, 6)
		m, err := pr.NewModel(SUM)
		if err != nil {
			t.Fatal(err)
		}
		base, basis, ok, err := m.Solve(nil)
		if err != nil || !ok {
			t.Fatalf("nominal solve: ok=%v err=%v", ok, err)
		}
		routes := m.BetaVars()

		for trial := 0; trial < 8; trial++ {
			mutSeed := seed*1000 + int64(trial)

			// Serial reference: mutate the parent, solve, roll back.
			snap := m.CaptureState()
			viewMutate(t, m, pr, routes, rand.New(rand.NewSource(mutSeed)))
			wantBound, wantOK, err := m.SolveBound(basis)
			if err != nil {
				t.Fatal(err)
			}
			m.RestoreState(snap)

			v, err := m.ForkView()
			if err != nil {
				t.Fatal(err)
			}
			viewMutate(t, v, pr, routes, rand.New(rand.NewSource(mutSeed)))
			gotBound, gotOK, err := v.SolveBound(basis)
			if err != nil {
				t.Fatal(err)
			}
			if gotOK != wantOK {
				t.Fatalf("seed %d trial %d: view feasible=%v, serial %v", seed, trial, gotOK, wantOK)
			}
			if gotOK && math.Abs(gotBound-wantBound) > 1e-9*(1+math.Abs(wantBound)) {
				t.Fatalf("seed %d trial %d: view bound %.12g, serial %.12g",
					seed, trial, gotBound, wantBound)
			}
		}

		// The parent's committed state survived every view.
		again, _, ok, err := m.Solve(basis)
		if err != nil || !ok {
			t.Fatalf("parent re-solve: ok=%v err=%v", ok, err)
		}
		if math.Abs(again.Objective-base.Objective) > 1e-9*(1+math.Abs(base.Objective)) {
			t.Fatalf("parent disturbed: base %.12g, after views %.12g", base.Objective, again.Objective)
		}
	}
}

// TestForkViewConcurrent solves many views of one parent at once; the
// race detector checks the shared read-only state, and every answer
// must match its precomputed serial reference.
func TestForkViewConcurrent(t *testing.T) {
	pr := mutatorProblem(t, 3, 7)
	m, err := pr.NewModel(SUM)
	if err != nil {
		t.Fatal(err)
	}
	_, basis, ok, err := m.Solve(nil)
	if err != nil || !ok {
		t.Fatalf("nominal solve: ok=%v err=%v", ok, err)
	}
	routes := m.BetaVars()

	const n = 24
	type answer struct {
		bound float64
		ok    bool
	}
	want := make([]answer, n)
	for i := 0; i < n; i++ {
		snap := m.CaptureState()
		viewMutate(t, m, pr, routes, rand.New(rand.NewSource(int64(i))))
		b, okq, err := m.SolveBound(basis)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = answer{b, okq}
		m.RestoreState(snap)
	}

	views := make([]*ModelView, n)
	for i := range views {
		if views[i], err = m.ForkView(); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errs := make([]string, n)
	for i := range views {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			viewMutate(t, views[i], pr, routes, rand.New(rand.NewSource(int64(i))))
			b, okq, err := views[i].SolveBound(basis)
			switch {
			case err != nil:
				errs[i] = err.Error()
			case okq != want[i].ok:
				errs[i] = "feasibility mismatch"
			case okq && math.Abs(b-want[i].bound) > 1e-9*(1+math.Abs(want[i].bound)):
				errs[i] = "bound mismatch"
			}
		}(i)
	}
	wg.Wait()
	for i, e := range errs {
		if e != "" {
			t.Fatalf("view %d: %s", i, e)
		}
	}
	if got := m.SolverStats().Forks; got != n {
		t.Fatalf("parent counted %d forks, want %d", got, n)
	}
}
