package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/lp"
	"repro/internal/platform"
)

// randomPlatformProblem draws a platgen-style platform directly (the
// platgen package imports core's sibling platform package, so the
// generator is inlined here to avoid an import cycle in tests):
// K clusters on their own routers, random links, tight budgets so the
// relaxations are network-bound and degenerate ties are common.
func randomPlatformProblem(t *testing.T, rng *rand.Rand, k int) *Problem {
	t.Helper()
	pl := &platform.Platform{Routers: k}
	for i := 0; i < k; i++ {
		pl.Clusters = append(pl.Clusters, platform.Cluster{
			Name:    "C",
			Speed:   100,
			Gateway: 50 + 400*rng.Float64(),
			Router:  i,
		})
	}
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			if rng.Float64() >= 0.6 {
				continue
			}
			pl.Links = append(pl.Links, platform.Link{
				U:          i,
				V:          j,
				BW:         5 + 25*rng.Float64(),
				MaxConnect: 1 + rng.Intn(6),
			})
		}
	}
	if err := pl.ComputeRoutes(); err != nil {
		t.Fatal(err)
	}
	pr := NewProblem(pl)
	for i := range pr.Payoffs {
		pr.Payoffs[i] = float64(1 + rng.Intn(3))
	}
	return pr
}

func withSolver(s lp.Solver, f func()) {
	old := lp.DefaultSolver
	lp.DefaultSolver = s
	defer func() { lp.DefaultSolver = old }()
	f()
}

// TestRelaxedDenseRevisedAgree is the platgen-instance half of the
// solver cross-check: on randomized platforms, the rational
// relaxations (which mix LE rows, the GE rows of branching lower
// bounds, and — through MixedRelaxed pins below — EQ-like bound
// pairs) must produce the same objective from both backends to 1e-9.
func TestRelaxedDenseRevisedAgree(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		pr := randomPlatformProblem(t, rng, 4+rng.Intn(5))
		for _, obj := range []Objective{SUM, MAXMIN} {
			var dObj, rObj float64
			withSolver(lp.DenseSolver{}, func() {
				rel, ok, err := pr.Relaxed(obj, nil)
				if err != nil || !ok {
					t.Fatalf("seed %d: dense relaxed: ok=%v err=%v", seed, ok, err)
				}
				dObj = rel.Objective
			})
			withSolver(lp.RevisedSolver{}, func() {
				rel, ok, err := pr.Relaxed(obj, nil)
				if err != nil || !ok {
					t.Fatalf("seed %d: revised relaxed: ok=%v err=%v", seed, ok, err)
				}
				rObj = rel.Objective
			})
			if math.Abs(dObj-rObj) > 1e-9*(1+math.Abs(dObj)) {
				t.Fatalf("seed %d %v: dense %.12g, revised %.12g", seed, obj, dObj, rObj)
			}
		}
	}
}

// TestModelWarmMatchesColdAfterBoundChange is the warm-start half: a
// warm-started re-solve after a β bound change must match a cold
// solve of the same bound set — both on the revised path and against
// the dense backend.
func TestModelWarmMatchesColdAfterBoundChange(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(100 + seed))
		pr := randomPlatformProblem(t, rng, 4+rng.Intn(4))
		obj := []Objective{SUM, MAXMIN}[seed%2]
		m, err := pr.NewModel(obj)
		if err != nil {
			t.Fatal(err)
		}
		betas := m.BetaVars()
		if len(betas) == 0 {
			continue
		}
		rel, basis, ok, err := m.Solve(nil)
		if err != nil || !ok {
			t.Fatalf("seed %d: root solve: ok=%v err=%v", seed, ok, err)
		}
		for step := 0; step < 6; step++ {
			p := betas[rng.Intn(len(betas))]
			v := rel.Beta[p]
			var b BetaBounds
			if rng.Float64() < 0.5 {
				b = BetaBounds{Lb: 0, Ub: math.Floor(v)}
			} else {
				b = BetaBounds{Lb: math.Floor(v) + 1, Ub: -1}
			}
			if err := m.SetBounds(p, b); err != nil {
				t.Fatal(err)
			}
			warm, wBasis, wOK, err := m.Solve(basis)
			if err != nil {
				t.Fatalf("seed %d step %d: warm: %v", seed, step, err)
			}
			coldRel, cOK, err := m.SolveWith(lp.RevisedSolver{})
			if err != nil {
				t.Fatalf("seed %d step %d: cold: %v", seed, step, err)
			}
			denseRel, dOK, err := m.SolveWith(lp.DenseSolver{})
			if err != nil {
				t.Fatalf("seed %d step %d: dense: %v", seed, step, err)
			}
			if wOK != cOK || wOK != dOK {
				t.Fatalf("seed %d step %d: feasibility disagreement warm=%v cold=%v dense=%v", seed, step, wOK, cOK, dOK)
			}
			if !wOK {
				// Infeasible bound set: revert and continue with
				// another branch direction.
				if err := m.SetBounds(p, BetaBounds{Lb: 0, Ub: -1}); err != nil {
					t.Fatal(err)
				}
				continue
			}
			if math.Abs(warm.Objective-coldRel.Objective) > 1e-9*(1+math.Abs(coldRel.Objective)) {
				t.Fatalf("seed %d step %d: warm %.12g, cold %.12g", seed, step, warm.Objective, coldRel.Objective)
			}
			if math.Abs(warm.Objective-denseRel.Objective) > 1e-9*(1+math.Abs(denseRel.Objective)) {
				t.Fatalf("seed %d step %d: warm %.12g, dense %.12g", seed, step, warm.Objective, denseRel.Objective)
			}
			rel, basis = warm, wBasis
		}
	}
}

// TestModelRandomBoundSetsAgree pins dense-vs-revised agreement on
// random per-node bound sets — the per-node half of the solver-swap
// acceptance check. The end-to-end tree comparison lives in
// heuristics.TestBranchAndBoundModesAgree (core cannot import
// heuristics).
func TestModelRandomBoundSetsAgree(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(200 + seed))
		pr := randomPlatformProblem(t, rng, 4+rng.Intn(4))
		m, err := pr.NewModel(SUM)
		if err != nil {
			t.Fatal(err)
		}
		betas := m.BetaVars()
		bounds := map[Pair]BetaBounds{}
		for _, p := range betas {
			switch rng.Intn(3) {
			case 0:
				bounds[p] = BetaBounds{Lb: float64(rng.Intn(2)), Ub: float64(1 + rng.Intn(3))}
			case 1:
				bounds[p] = BetaBounds{Lb: float64(rng.Intn(2)), Ub: -1}
			}
		}
		for p, b := range bounds {
			if err := m.SetBounds(p, b); err != nil {
				t.Fatal(err)
			}
		}
		// Model hard-wires its revised instance, so backend selection
		// must go through SolveWith — toggling lp.DefaultSolver has no
		// effect on Model-based paths.
		var dObj, rObj float64
		var dOK, rOK bool
		{
			sol, ok, err := m.SolveWith(lp.DenseSolver{})
			if err != nil {
				t.Fatal(err)
			}
			dOK = ok
			if ok {
				dObj = sol.Objective
			}
		}
		{
			sol, ok, err := m.SolveWith(lp.RevisedSolver{})
			if err != nil {
				t.Fatal(err)
			}
			rOK = ok
			if ok {
				rObj = sol.Objective
			}
		}
		if dOK != rOK {
			t.Fatalf("seed %d: feasibility disagreement dense=%v revised=%v", seed, dOK, rOK)
		}
		if dOK && math.Abs(dObj-rObj) > 1e-9*(1+math.Abs(dObj)) {
			t.Fatalf("seed %d: dense %.12g, revised %.12g", seed, dObj, rObj)
		}
	}
}
