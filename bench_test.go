// Root benchmark harness: one benchmark per evaluation artifact of
// the paper (DESIGN.md experiment index E1–E8). The figure benchmarks
// report the measured mean objective ratios via b.ReportMetric, so
// `go test -bench=.` regenerates the numbers behind every table and
// figure at benchmark scale; cmd/experiments runs the same sweeps at
// full scale.
package repro

import (
	"math/rand"
	"testing"

	"repro/internal/adapt"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/heuristics"
	"repro/internal/lp"
	"repro/internal/netsim"
	"repro/internal/platgen"
	"repro/internal/reduction"
	"repro/internal/schedule"
	"repro/internal/service"
)

func benchProblem(b *testing.B, k int, seed int64) *core.Problem {
	b.Helper()
	params := platgen.Params{K: k, Connectivity: 0.4, Heterogeneity: 0.4, MeanG: 250, MeanBW: 50, MeanMaxCon: 15}
	pl, err := platgen.Generate(params, rand.New(rand.NewSource(seed)))
	if err != nil {
		b.Fatal(err)
	}
	return core.NewProblem(pl)
}

// BenchmarkE1_Table1PlatformGeneration regenerates Table 1 platforms
// (a sweep sample) per iteration.
func BenchmarkE1_Table1PlatformGeneration(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	grid := platgen.SampleGrid(32, 45, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range grid {
			if _, err := platgen.Generate(p, rng); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkE2_AggregateRatios regenerates the §6.1 headline
// aggregates (LPRG/G = 1.98 MAXMIN, 1.02 SUM in the paper) and
// reports the measured values as custom metrics.
func BenchmarkE2_AggregateRatios(b *testing.B) {
	opts := experiments.Options{Seed: 1, PlatformsPer: 3, Ks: []int{5, 15, 25}, LPRRMaxK: 0}
	var agg *experiments.Aggregate
	for i := 0; i < b.N; i++ {
		var err error
		agg, err = experiments.AggregateRatios(opts)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(agg.LPRGOverG[core.MAXMIN], "LPRG/G-maxmin")
	b.ReportMetric(agg.LPRGOverG[core.SUM], "LPRG/G-sum")
	b.ReportMetric(agg.LPROverLP[core.MAXMIN], "LPR/LP-maxmin")
}

// BenchmarkE3_Figure5 regenerates a Figure 5 sweep point set (LPRG
// and G against the LP bound as K grows) and reports the large-K
// ratios.
func BenchmarkE3_Figure5(b *testing.B) {
	opts := experiments.Options{Seed: 1, PlatformsPer: 2, Ks: []int{5, 25}, LPRRMaxK: 0}
	var pts []experiments.RatioPoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = experiments.Figure5(opts)
		if err != nil {
			b.Fatal(err)
		}
	}
	last := pts[len(pts)-1]
	b.ReportMetric(last.Ratio[core.MAXMIN][heuristics.NameLPRG], "maxmin-LPRG/LP")
	b.ReportMetric(last.Ratio[core.MAXMIN][heuristics.NameG], "maxmin-G/LP")
	b.ReportMetric(last.Ratio[core.SUM][heuristics.NameLPRG], "sum-LPRG/LP")
}

// BenchmarkE4_Figure6 regenerates a Figure 6 point (LPRR and its
// equal-probability control against G/LPRG on small topologies).
func BenchmarkE4_Figure6(b *testing.B) {
	opts := experiments.Options{Seed: 1, PlatformsPer: 2, Ks: []int{10}, LPRRMaxK: 10}
	var pts []experiments.RatioPoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = experiments.Figure6(opts)
		if err != nil {
			b.Fatal(err)
		}
	}
	pt := pts[0]
	b.ReportMetric(pt.Ratio[core.MAXMIN][heuristics.NameLPRR], "maxmin-LPRR/LP")
	b.ReportMetric(pt.Ratio[core.MAXMIN][heuristics.NameLPRREQ], "maxmin-LPRR-EQ/LP")
	b.ReportMetric(pt.Ratio[core.MAXMIN][heuristics.NameLPRG], "maxmin-LPRG/LP")
}

// BenchmarkE5_Figure7_* time one run of each heuristic at K=20 — the
// per-heuristic cost that Figure 7 plots (G ≪ LPR ≈ LPRG ≪ LPRR).
func BenchmarkE5_Figure7_G(b *testing.B) {
	pr := benchProblem(b, 20, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		heuristics.Greedy(pr)
	}
}

func BenchmarkE5_Figure7_LP(b *testing.B) {
	pr := benchProblem(b, 20, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := heuristics.UpperBound(pr, core.MAXMIN); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE5_Figure7_LPR(b *testing.B) {
	pr := benchProblem(b, 20, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := heuristics.LPR(pr, core.MAXMIN); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE5_Figure7_LPRG(b *testing.B) {
	pr := benchProblem(b, 20, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := heuristics.LPRG(pr, core.MAXMIN); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE5_Figure7_LPRR(b *testing.B) {
	pr := benchProblem(b, 20, 3)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := heuristics.LPRR(pr, core.MAXMIN, heuristics.ProportionalRounding, rng); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE9_LPSolver_* solve the same K=20 rational relaxation with
// each LP backend: the original dense two-phase tableau versus the
// sparse revised simplex that is now the package default. The ratio
// is the raw single-solve speedup of the solver refactor.
func benchRelaxedWith(b *testing.B, s lp.Solver) {
	pr := benchProblem(b, 20, 3)
	old := lp.DefaultSolver
	lp.DefaultSolver = s
	defer func() { lp.DefaultSolver = old }()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := heuristics.UpperBound(pr, core.MAXMIN); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE9_LPSolver_Dense(b *testing.B)   { benchRelaxedWith(b, lp.DenseSolver{}) }
func BenchmarkE9_LPSolver_Revised(b *testing.B) { benchRelaxedWith(b, lp.RevisedSolver{}) }

// BenchmarkE10_BnB_* compare the exact branch-and-bound solver's two
// node-relaxation strategies on K ∈ {4,6,8} platforms: cold dense
// solves per node (the pre-refactor reference) versus warm-started
// revised-simplex re-solves from the parent basis. The instances are
// network-bound (tight connection budgets and bandwidths, non-uniform
// payoffs), so the root relaxation is fractional and the tree
// actually branches; both modes prove the same optimum.
func benchBnBProblem(b *testing.B, k int) *core.Problem {
	b.Helper()
	params := platgen.Params{K: k, Connectivity: 0.6, Heterogeneity: 0.6, MeanG: 450, MeanBW: 10, MeanMaxCon: 5}
	pl, err := platgen.Generate(params, rand.New(rand.NewSource(11)))
	if err != nil {
		b.Fatal(err)
	}
	pr := core.NewProblem(pl)
	for i := range pr.Payoffs {
		pr.Payoffs[i] = float64(1 + i%3)
	}
	return pr
}

func benchBnB(b *testing.B, k int, mode heuristics.BnBMode) {
	pr := benchBnBProblem(b, k)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, err := heuristics.BranchAndBoundMode(pr, core.SUM, 4000, mode)
		if err != nil && err != heuristics.ErrNodeBudget {
			b.Fatal(err)
		}
	}
}

func BenchmarkE10_BnBColdDense_K4(b *testing.B) { benchBnB(b, 4, heuristics.BnBColdDense) }
func BenchmarkE10_BnBWarm_K4(b *testing.B)      { benchBnB(b, 4, heuristics.BnBWarm) }
func BenchmarkE10_BnBColdDense_K6(b *testing.B) { benchBnB(b, 6, heuristics.BnBColdDense) }
func BenchmarkE10_BnBWarm_K6(b *testing.B)      { benchBnB(b, 6, heuristics.BnBWarm) }
func BenchmarkE10_BnBColdDense_K8(b *testing.B) { benchBnB(b, 8, heuristics.BnBColdDense) }
func BenchmarkE10_BnBWarm_K8(b *testing.B)      { benchBnB(b, 8, heuristics.BnBWarm) }

// BenchmarkE11_Adaptive* time the §1 adaptability loop over 20
// epochs on a network-bound platform: the cold path rebuilds and
// cold-solves its LPs every epoch (pre-engine behavior), the warm
// path drives adapt's epoch engine — one persistent core.Model,
// RHS-only capacity mutations, root-basis reuse and (for BnB)
// incumbent carry-over. The warm/cold ratio is the measured payoff
// of the engine.
const benchAdaptiveEpochs = 20

func benchAdaptiveModel(pr *core.Problem) adapt.UniformLoadModel {
	return experiments.AdaptiveLoadModel(pr, 7)
}

func BenchmarkE11_AdaptiveColdBnB_K6(b *testing.B) {
	pr := benchBnBProblem(b, 6)
	model := benchAdaptiveModel(pr)
	solve := func(p *core.Problem) (*core.Allocation, error) {
		a, _, err := heuristics.BranchAndBound(p, core.SUM, 4000)
		if err == heuristics.ErrNodeBudget {
			err = nil
		}
		return a, err
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := adapt.Run(pr, solve, model, core.SUM, benchAdaptiveEpochs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE11_AdaptiveWarmBnB_K6(b *testing.B) {
	pr := benchBnBProblem(b, 6)
	model := benchAdaptiveModel(pr)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := adapt.RunWarm(pr, adapt.WarmBnBBudgetTolerant(4000, nil), model, core.SUM, benchAdaptiveEpochs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE11_AdaptiveColdLPRG_K12(b *testing.B) {
	pr := benchBnBProblem(b, 12)
	model := benchAdaptiveModel(pr)
	solve := func(p *core.Problem) (*core.Allocation, error) {
		m, err := p.NewModel(core.SUM)
		if err != nil {
			return nil, err
		}
		a, _, err := heuristics.LPRGOnModel(m, p, core.SUM, nil)
		return a, err
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := adapt.Run(pr, solve, model, core.SUM, benchAdaptiveEpochs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE11_AdaptiveWarmLPRG_K12(b *testing.B) {
	pr := benchBnBProblem(b, 12)
	model := benchAdaptiveModel(pr)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := adapt.RunWarm(pr, adapt.WarmLPRG(), model, core.SUM, benchAdaptiveEpochs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE12_* measure the native bounded-variable encoding against
// the retired per-route β bound-row encoding on the warm LPRG epoch
// loop — the E11 regime where the warm dual simplex fell behind a
// cold rebuild at K≳20 because every pivot paid for the dense O(m²)
// inverse over the inflated row count. Cold rebuild timings live in
// BenchmarkE11_AdaptiveColdLPRG_*; the ratio legacy/native is the
// direct payoff of retiring the rows.
func benchE12WarmLPRG(b *testing.B, k int, legacy bool) {
	pr := benchBnBProblem(b, k)
	model := benchAdaptiveModel(pr)
	build := (*core.Problem).NewModel
	if legacy {
		build = (*core.Problem).NewModelRowBounds
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cm, err := build(pr, core.SUM)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := adapt.RunWarmOn(cm, pr, heuristics.LPRGOnModel, model, core.SUM, benchAdaptiveEpochs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE12_WarmLPRG_NativeBounds_K12(b *testing.B) { benchE12WarmLPRG(b, 12, false) }
func BenchmarkE12_WarmLPRG_RowBounds_K12(b *testing.B)    { benchE12WarmLPRG(b, 12, true) }
func BenchmarkE12_WarmLPRG_NativeBounds_K20(b *testing.B) { benchE12WarmLPRG(b, 20, false) }
func BenchmarkE12_WarmLPRG_RowBounds_K20(b *testing.B)    { benchE12WarmLPRG(b, 20, true) }

// BenchmarkE13_* measure the sparse LU/eta-file basis representation
// against the dense explicit inverse it replaced (the PR 3 baseline)
// on the warm LPRG epoch loop — the regime where every dual pivot
// used to pay O(m²) against the dense inverse. Besides ns/op, each
// benchmark reports the solver's pivot count and the implied
// per-pivot cost, so the representation effect is visible separately
// from pivot-count changes (devex pricing). K=30 runs on the LU
// backend only: the point of the representation is that it makes
// that scale tractable.
func benchE13WarmLPRG(b *testing.B, k int, rep lp.BasisRep) {
	pr := benchBnBProblem(b, k)
	model := benchAdaptiveModel(pr)
	totalPivots := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cm, err := pr.NewModelRep(core.SUM, rep)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := adapt.RunWarmOn(cm, pr, heuristics.LPRGOnModel, model, core.SUM, benchAdaptiveEpochs); err != nil {
			b.Fatal(err)
		}
		totalPivots += cm.SolverStats().Pivots
	}
	if totalPivots > 0 {
		b.ReportMetric(float64(totalPivots)/float64(b.N), "pivots/op")
		b.ReportMetric(b.Elapsed().Seconds()*1e6/float64(totalPivots), "µs/pivot")
	}
}

func BenchmarkE13_WarmLPRG_LU_K12(b *testing.B)       { benchE13WarmLPRG(b, 12, lp.LUEtaRep) }
func BenchmarkE13_WarmLPRG_DenseInv_K12(b *testing.B) { benchE13WarmLPRG(b, 12, lp.DenseInverseRep) }
func BenchmarkE13_WarmLPRG_LU_K20(b *testing.B)       { benchE13WarmLPRG(b, 20, lp.LUEtaRep) }
func BenchmarkE13_WarmLPRG_DenseInv_K20(b *testing.B) { benchE13WarmLPRG(b, 20, lp.DenseInverseRep) }
func BenchmarkE13_WarmLPRG_LU_K30(b *testing.B)       { benchE13WarmLPRG(b, 30, lp.LUEtaRep) }

// BenchmarkE14_* measure the Forrest–Tomlin U-update basis
// representation (plus exact dual steepest-edge pricing and the
// bound-flipping ratio test) against the product-form eta file it
// replaced, on the same warm LPRG epoch loop as E13. Besides ns/op,
// each benchmark reports pivots/op, the implied per-pivot cost, and
// refactorizations/op — the eta file's refactorization count is the
// super-linear term FT removes, so the refactors column is the
// headline. K=50 runs on the FT backend only: the point of the
// representation is that it makes that scale tractable.
func benchE14WarmLPRG(b *testing.B, k int, rep lp.BasisRep) {
	pr := benchBnBProblem(b, k)
	model := benchAdaptiveModel(pr)
	totalPivots, totalRefactors, totalUpdates := 0, 0, 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cm, err := pr.NewModelRep(core.SUM, rep)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := adapt.RunWarmOn(cm, pr, heuristics.LPRGOnModel, model, core.SUM, benchAdaptiveEpochs); err != nil {
			b.Fatal(err)
		}
		st := cm.SolverStats()
		totalPivots += st.Pivots
		totalRefactors += st.Refactorizations
		totalUpdates += st.FTUpdates
	}
	if totalPivots > 0 {
		b.ReportMetric(float64(totalPivots)/float64(b.N), "pivots/op")
		b.ReportMetric(b.Elapsed().Seconds()*1e6/float64(totalPivots), "µs/pivot")
	}
	b.ReportMetric(float64(totalRefactors)/float64(b.N), "refactors/op")
	if totalUpdates > 0 {
		b.ReportMetric(float64(totalUpdates)/float64(b.N), "ftupdates/op")
	}
}

func BenchmarkE14_WarmLPRG_FT_K12(b *testing.B)  { benchE14WarmLPRG(b, 12, lp.ForrestTomlinRep) }
func BenchmarkE14_WarmLPRG_FT_K20(b *testing.B)  { benchE14WarmLPRG(b, 20, lp.ForrestTomlinRep) }
func BenchmarkE14_WarmLPRG_FT_K30(b *testing.B)  { benchE14WarmLPRG(b, 30, lp.ForrestTomlinRep) }
func BenchmarkE14_WarmLPRG_FT_K50(b *testing.B)  { benchE14WarmLPRG(b, 50, lp.ForrestTomlinRep) }
func BenchmarkE14_WarmLPRG_Eta_K30(b *testing.B) { benchE14WarmLPRG(b, 30, lp.LUEtaRep) }

// benchE15Session builds one warm scheduling-service session on the
// E15 network-bound platform plus its 256-query batch (64 distinct
// mutations, 4 copies each) — the acceptance workload behind
// BENCH_E15.json.
func benchE15Session(b *testing.B, k int) (*service.Session, []service.WhatIfRequest) {
	b.Helper()
	params := platgen.Params{K: k, Connectivity: 0.6, Heterogeneity: 0.6, MeanG: 450, MeanBW: 10, MeanMaxCon: 5}
	rng := rand.New(rand.NewSource(9))
	pl, err := platgen.Generate(params, rng)
	if err != nil {
		b.Fatal(err)
	}
	encoded, err := pl.Encode()
	if err != nil {
		b.Fatal(err)
	}
	sess, _, _, err := service.NewPool(1).GetOrCreate(&service.CreateSessionRequest{
		Platform: encoded, Objective: "maxmin", Heuristic: "lprg",
	})
	if err != nil {
		b.Fatal(err)
	}
	routes := sess.BetaRoutes()
	const nd, n = 64, 256
	distinct := make([]service.WhatIfRequest, nd)
	for d := range distinct {
		c := d % k
		switch d % 4 {
		case 0:
			distinct[d] = service.WhatIfRequest{Speeds: []service.ClusterValue{{Cluster: c, Value: pl.Clusters[c].Speed * (0.5 + rng.Float64())}}, Relax: true}
		case 1:
			distinct[d] = service.WhatIfRequest{Gateways: []service.ClusterValue{{Cluster: c, Value: pl.Clusters[c].Gateway * (0.5 + rng.Float64())}}, Relax: true}
		case 2:
			distinct[d] = service.WhatIfRequest{Links: []service.LinkValue{{Link: rng.Intn(len(pl.Links)), MaxConnect: float64(1 + rng.Intn(9))}}, Relax: true}
		default:
			r := routes[rng.Intn(len(routes))]
			distinct[d] = service.WhatIfRequest{Bounds: []service.RouteBounds{{From: r.K, To: r.L, Lb: 0, Ub: float64(1 + rng.Intn(4))}}}
		}
	}
	queries := make([]service.WhatIfRequest, n)
	for i := range queries {
		queries[i] = distinct[i%nd]
	}
	rng.Shuffle(n, func(i, j int) { queries[i], queries[j] = queries[j], queries[i] })
	return sess, queries
}

// BenchmarkE15_BatchWhatIf_K20 answers the 256-query acceptance batch
// through the batched engine (forked contexts + dedupe + lean
// reports); the qps metric is the headline BENCH_E15.json tracks.
func BenchmarkE15_BatchWhatIf_K20(b *testing.B) {
	sess, queries := benchE15Session(b, 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sess.WhatIfBatch(&service.BatchWhatIfRequest{Queries: queries}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(queries)*b.N)/b.Elapsed().Seconds(), "qps")
}

// BenchmarkE15_SerialWhatIf_K20 answers the same batch one query at a
// time through the session mutex — the serialized baseline the batch
// speedup is measured against. The answer cache is flushed per query
// so duplicates measure the solve path, not cache hits.
func BenchmarkE15_SerialWhatIf_K20(b *testing.B) {
	sess, queries := benchE15Session(b, 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for qi := range queries {
			q := queries[qi]
			q.Relax = true
			sess.FlushAnswerCache()
			if _, err := sess.WhatIf(&q); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(len(queries)*b.N)/b.Elapsed().Seconds(), "qps")
}

// benchE16Snapshot builds one warm session on the E16 platform,
// drives it through 10 committed drift epochs, and returns the
// session plus its encoded snapshot — the portability workload behind
// BENCH_E16.json.
func benchE16Snapshot(b *testing.B, k int) (*service.Session, []byte) {
	b.Helper()
	params := platgen.Params{K: k, Connectivity: 0.6, Heterogeneity: 0.6, MeanG: 450, MeanBW: 10, MeanMaxCon: 5}
	rng := rand.New(rand.NewSource(16))
	pl, err := platgen.Generate(params, rng)
	if err != nil {
		b.Fatal(err)
	}
	encoded, err := pl.Encode()
	if err != nil {
		b.Fatal(err)
	}
	sess, _, _, err := service.NewPool(1).GetOrCreate(&service.CreateSessionRequest{
		Platform: encoded, Objective: "maxmin", Heuristic: "lprg",
	})
	if err != nil {
		b.Fatal(err)
	}
	for e := 0; e < 10; e++ {
		req := &service.EpochRequest{SpeedFactor: make([]float64, k), GatewayFactor: make([]float64, k)}
		for i := 0; i < k; i++ {
			req.SpeedFactor[i] = 0.85 + 0.3*rng.Float64()
			req.GatewayFactor[i] = 0.85 + 0.3*rng.Float64()
		}
		if _, err := sess.Epoch(req); err != nil {
			b.Fatal(err)
		}
	}
	snap, err := sess.Snapshot()
	if err != nil {
		b.Fatal(err)
	}
	wire, err := snap.Encode()
	if err != nil {
		b.Fatal(err)
	}
	return sess, wire
}

// BenchmarkE16_WarmRebuild_K20 rebuilds a drifted session from its
// snapshot — decode, model build, basis install, warm solve — the
// path a replica runs on migration arrival or crash recovery.
func BenchmarkE16_WarmRebuild_K20(b *testing.B) {
	_, wire := benchE16Snapshot(b, 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap, err := cluster.DecodeSnapshot(wire)
		if err != nil {
			b.Fatal(err)
		}
		_, _, warm, err := service.RestoreSession(snap)
		if err != nil {
			b.Fatal(err)
		}
		if !warm {
			b.Fatal("rebuild was not warm")
		}
	}
}

// BenchmarkE16_ColdRebuild_K20 rebuilds the same committed state from
// its platform JSON alone — the baseline a replica without snapshots
// pays (model build + cold solve).
func BenchmarkE16_ColdRebuild_K20(b *testing.B) {
	sess, _ := benchE16Snapshot(b, 20)
	drifted, err := sess.PlatformJSON()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := service.NewPool(1).GetOrCreate(&service.CreateSessionRequest{
			Platform: drifted, Objective: "maxmin", Heuristic: "lprg",
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE16_CacheHitQuery_K20 answers the committed query from the
// answer cache — zero simplex pivots, the fast path repeat monitors
// ride.
func BenchmarkE16_CacheHitQuery_K20(b *testing.B) {
	sess, _ := benchE16Snapshot(b, 20)
	if _, err := sess.Query(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := sess.Query()
		if err != nil {
			b.Fatal(err)
		}
		if !rep.Cached {
			b.Fatal("query missed the answer cache")
		}
	}
}

// BenchmarkE7_ReductionExactSolve builds the §4 instance for a
// 5-cycle and solves it exactly (Theorem 1 equivalence).
func BenchmarkE7_ReductionExactSolve(b *testing.B) {
	g := reduction.Graph{N: 5, Edges: [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}}}
	var exact float64
	for i := 0; i < b.N; i++ {
		inst, err := reduction.Build(g)
		if err != nil {
			b.Fatal(err)
		}
		_, exact, err = heuristics.BranchAndBound(inst.Problem, core.SUM, 0)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(exact, "optimum")
}

// BenchmarkE8_ScheduleSimulate runs the full pipeline: greedy solve,
// §3.2 reconstruction, and paced execution on the flow simulator.
func BenchmarkE8_ScheduleSimulate(b *testing.B) {
	pr := benchProblem(b, 12, 5)
	var fits bool
	for i := 0; i < b.N; i++ {
		alloc := heuristics.Greedy(pr)
		s, err := schedule.Build(pr, alloc, 100000)
		if err != nil {
			b.Fatal(err)
		}
		rep, err := netsim.ExecuteSchedule(pr, s, 50, true)
		if err != nil {
			b.Fatal(err)
		}
		fits = rep.FitsPeriod
	}
	if !fits {
		b.Fatal("paced schedule must fit its period")
	}
}

// BenchmarkAblation_GreedyLocalRule compares the paper-faithful G
// against the full-drain variant (DESIGN.md design-choice ablation):
// the metric is the mean SUM ratio gained by draining stranded local
// speed.
func BenchmarkAblation_GreedyLocalRule(b *testing.B) {
	prs := make([]*core.Problem, 6)
	for i := range prs {
		prs[i] = benchProblem(b, 15, int64(100+i))
	}
	var gain float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gain = 0
		for _, pr := range prs {
			g := pr.Objective(core.SUM, heuristics.Greedy(pr))
			gf := pr.Objective(core.SUM, heuristics.GreedyFullDrain(pr))
			if g > 0 {
				gain += gf / g
			}
		}
		gain /= float64(len(prs))
	}
	b.ReportMetric(gain, "G-FULL/G-sum")
}

// BenchmarkAblation_LPRRRoundingRule compares proportional vs equal
// probability rounding (§6.2's observation that the equal variant is
// much worse) as a quality metric.
func BenchmarkAblation_LPRRRoundingRule(b *testing.B) {
	pr := benchProblem(b, 10, 7)
	rng := rand.New(rand.NewSource(1))
	var prop, eq float64
	for i := 0; i < b.N; i++ {
		ap, err := heuristics.LPRR(pr, core.MAXMIN, heuristics.ProportionalRounding, rng)
		if err != nil {
			b.Fatal(err)
		}
		ae, err := heuristics.LPRR(pr, core.MAXMIN, heuristics.EqualRounding, rng)
		if err != nil {
			b.Fatal(err)
		}
		prop = pr.Objective(core.MAXMIN, ap)
		eq = pr.Objective(core.MAXMIN, ae)
	}
	b.ReportMetric(prop, "maxmin-proportional")
	b.ReportMetric(eq, "maxmin-equal")
}
